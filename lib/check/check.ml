(* The static verifier. See the interface for the invariant catalogue and
   docs/CHECK.md for the rule-by-rule derivations. *)

open Simd_loopir
open Simd_vir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Util = Simd_support.Util
module Json = Simd_support.Json
module SM = Util.String_map
module SS = Util.String_set
module Absoff = Simd_dataflow.Absoff
module Dataflow = Simd_dataflow.Dataflow

type severity = Error | Warning

type violation = {
  rule : string;
  severity : severity;
  where : string;
  detail : string;
}

type facts = {
  ops_proved : int;
  stores_proved : int;
  shifts_proved : int;
  seams_proved : int;
}

type result = { violations : violation list; facts : facts }

let no_facts =
  { ops_proved = 0; stores_proved = 0; shifts_proved = 0; seams_proved = 0 }

let add_facts a b =
  {
    ops_proved = a.ops_proved + b.ops_proved;
    stores_proved = a.stores_proved + b.stores_proved;
    shifts_proved = a.shifts_proved + b.shifts_proved;
    seams_proved = a.seams_proved + b.seams_proved;
  }

let empty = { violations = []; facts = no_facts }

let merge a b =
  {
    violations = a.violations @ b.violations;
    facts = add_facts a.facts b.facts;
  }

let errors r = List.filter (fun v -> v.severity = Error) r.violations
let warnings r = List.filter (fun v -> v.severity = Warning) r.violations
let severity_name = function Error -> "error" | Warning -> "warning"

let pp_violation fmt v =
  Format.fprintf fmt "%s[%s] %s: %s" (severity_name v.severity) v.rule v.where
    v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

let violation_to_json v =
  Json.Obj
    [
      ("severity", Json.String (severity_name v.severity));
      ("rule", Json.String v.rule);
      ("where", Json.String v.where);
      ("detail", Json.String v.detail);
    ]

let facts_to_json f =
  Json.Obj
    [
      ("ops_proved", Json.Int f.ops_proved);
      ("stores_proved", Json.Int f.stores_proved);
      ("shifts_proved", Json.Int f.shifts_proved);
      ("seams_proved", Json.Int f.seams_proved);
    ]

(* ------------------------------------------------------------------ *)
(* Checker context                                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  analysis : Analysis.t;
  v : int;
  elem : int;
  block : int;
  opaque_loads : bool;  (** MemNorm ran: known-align load offsets gone *)
  mutable viols : violation list;  (* reversed *)
  mutable ops_proved : int;
  mutable stores_proved : int;
  mutable shifts_proved : int;
  mutable seams_proved : int;
}

let make_ctx ?(loads_normalized = false) analysis =
  {
    analysis;
    v = Simd_machine.Config.vector_len analysis.Analysis.machine;
    elem = analysis.Analysis.elem;
    block = analysis.Analysis.block;
    opaque_loads = loads_normalized;
    viols = [];
    ops_proved = 0;
    stores_proved = 0;
    shifts_proved = 0;
    seams_proved = 0;
  }

let report ctx ~rule ~severity ~where detail =
  ctx.viols <- { rule; severity; where; detail } :: ctx.viols

let result_of_ctx ctx =
  {
    violations = List.rev ctx.viols;
    facts =
      {
        ops_proved = ctx.ops_proved;
        stores_proved = ctx.stores_proved;
        shifts_proved = ctx.shifts_proved;
        seams_proved = ctx.seams_proved;
      };
  }

let lookup_base ctx arr =
  match Ast.find_array ctx.analysis.Analysis.program arr with
  | Some { Ast.arr_align = Ast.Known k; _ } -> Some k
  | Some { Ast.arr_align = Ast.Unknown; _ } | None -> None

let addr_off ctx (a : Addr.t) =
  Absoff.of_addr ~v:ctx.v ~elem:ctx.elem ~lookup:(lookup_base ctx) a

(* A load's stream offset. Once MemNorm has rewritten a compile-time-
   aligned load to its V-aligned chunk address, the original offset is no
   longer derivable from the address — those loads become [Top] (their
   obligations were proved at the pre-MemNorm boundaries). Runtime-aligned
   loads are untouched by MemNorm and stay symbolic. *)
let load_off ctx (a : Addr.t) =
  if ctx.opaque_loads && lookup_base ctx a.Addr.array <> None then Absoff.Top
  else addr_off ctx a

let eval_rexpr ctx r =
  Absoff.eval_rexpr ~v:ctx.v ~elem:ctx.elem ~lookup:(lookup_base ctx) r

(* ------------------------------------------------------------------ *)
(* Graph-level checks: (C.2)/(C.3) re-validation + dead-shift lint      *)
(* ------------------------------------------------------------------ *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let rec count_graph_ops = function
  | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> 0
  | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) ->
    1 + count_graph_ops a + count_graph_ops b
  | Graph.Sel (m, a, b) ->
    1 + count_graph_ops m + count_graph_ops a + count_graph_ops b
  | Graph.Shift (src, _, _) -> count_graph_ops src

(* [shared] answers whether a reorganization chain has more than one
   consumer body-wide: a detour that looks wasteful inside one statement
   is not dead when another statement rides the same (value-numbered)
   stream, so the lint must count consumers across the whole body. The
   scan itself lives in the dataflow library ([Dataflow.Deadshift]);
   only the diagnostic rendering is the checker's. *)
let dead_shift_lint ctx ~shared ~where (n : Graph.node) =
  List.iter
    (function
      | Dataflow.Deadshift.No_op { from_; to_ } ->
        report ctx ~rule:"dead-shift" ~severity:Warning ~where
          (Format.asprintf
             "vshiftstream(%a -> %a) is a no-op: source and target offsets \
              provably coincide"
             Offset.pp from_ Offset.pp to_)
      | Dataflow.Deadshift.Cancelling { f1; t1; to_ } ->
        report ctx ~rule:"dead-shift" ~severity:Warning ~where
          (Format.asprintf
             "redundant vshiftstream pair %a -> %a -> %a returns the stream \
              to its original offset"
             Offset.pp f1 Offset.pp t1 Offset.pp to_))
    (Dataflow.Deadshift.find ~block:ctx.block ~shared n)

let check_graphs ~analysis graphs =
  let ctx = make_ctx analysis in
  (* Body-wide chain occurrence counts: a chain appearing twice anywhere
     in the body is one shared vshiftstream after value numbering. *)
  let all_chains =
    List.concat_map
      (fun ((_ : Ast.stmt), (g : Graph.t)) -> Graph.all_chains g)
      graphs
  in
  let shared c =
    List.length (List.filter (Graph.equal_chain c) all_chains) >= 2
  in
  List.iteri
    (fun i ((_stmt : Ast.stmt), (g : Graph.t)) ->
      let where = Printf.sprintf "graph#%d" i in
      (match Graph.validate ~analysis g with
      | Ok () ->
        (* [validate] discharged (C.2) for the root and (C.3) at every
           op/shift of this graph. *)
        ctx.stores_proved <- ctx.stores_proved + 1;
        ctx.ops_proved <- ctx.ops_proved + count_graph_ops g.Graph.root;
        ctx.shifts_proved <-
          ctx.shifts_proved + Graph.graph_shift_count g
      | Error msg ->
        let rule = if contains_sub ~sub:"(C.2)" msg then "C.2" else "C.3" in
        report ctx ~rule ~severity:Error ~where msg);
      dead_shift_lint ctx ~shared ~where g.Graph.root;
      match g.Graph.mask with
      | Some m -> dead_shift_lint ctx ~shared ~where m
      | None -> ())
    graphs;
  result_of_ctx ctx

(* ------------------------------------------------------------------ *)
(* VIR-level abstract interpretation                                   *)
(* ------------------------------------------------------------------ *)

(* Compile-time shift amounts and splice points must be in-register byte
   counts; shift amounts must also be whole elements (the analysis rejects
   sub-element base alignments, so every stream offset is a multiple of
   D). Runtime amounts are checked structurally: Mod_const moduli must be
   positive. *)
let rec range_check_rexpr ctx ~where ~kind r =
  (match r with
  | Rexpr.Mod_const (_, m) when m <= 0 ->
    report ctx ~rule:"range" ~severity:Error ~where
      (Format.asprintf "%s %a has non-positive modulus %d" kind Rexpr.pp r m)
  | _ -> ());
  match r with
  | Rexpr.Const _ | Rexpr.Offset_of _ | Rexpr.Trip | Rexpr.Counter -> ()
  | Rexpr.Add (a, b) | Rexpr.Sub (a, b) ->
    range_check_rexpr ctx ~where ~kind a;
    range_check_rexpr ctx ~where ~kind b
  | Rexpr.Mul_const (a, _) | Rexpr.Mod_const (a, _) ->
    range_check_rexpr ctx ~where ~kind a

let range_check_amount ctx ~where ~kind ~elem_multiple r =
  range_check_rexpr ctx ~where ~kind r;
  if Rexpr.is_const r then begin
    let c = Rexpr.const_exn r in
    if c < 0 || c > ctx.v then
      report ctx ~rule:"range" ~severity:Error ~where
        (Printf.sprintf "%s %d out of range [0, %d]" kind c ctx.v)
    else if elem_multiple && c mod ctx.elem <> 0 then
      report ctx ~rule:"range" ~severity:Error ~where
        (Printf.sprintf "%s %d is not a multiple of the element width %d"
           kind c ctx.elem)
  end

(* The vshiftpair adjacency discipline: the two operands must be the
   current and next V-byte register of one stream — structurally identical
   except for load addresses, which must pair up within one array, same
   stride, exactly one block apart. Operands containing temporaries are
   carried-register protocols (software pipelining); their adjacency is
   established where the temps are defined, so they are skipped here. *)
let rec vexpr_has_temp = function
  | Expr.Temp _ -> true
  | Expr.Load _ | Expr.Splat _ -> false
  | Expr.Op (_, a, b) | Expr.Pack (a, b) | Expr.Cmp (_, a, b) ->
    vexpr_has_temp a || vexpr_has_temp b
  | Expr.Shiftpair (a, b, _) | Expr.Splice (a, b, _) ->
    vexpr_has_temp a || vexpr_has_temp b
  | Expr.Sel (m, a, b) ->
    vexpr_has_temp m || vexpr_has_temp a || vexpr_has_temp b

let adjacency_check ctx ~where x y =
  let ok = ref true in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        if !ok then begin
          ok := false;
          report ctx ~rule:"adjacency" ~severity:Error ~where msg
        end)
      fmt
  in
  (* Runtime shift amounts of the two halves are one iteration apart
     textually ([Offset_of] of counter-displaced addresses) but must
     denote the same value mod V — whole-register displacements vanish.
     Fail only on a provable difference. *)
  let lock_amount kind s1 s2 =
    if not (Rexpr.equal s1 s2) then
      match Absoff.cmp ~v:ctx.v (eval_rexpr ctx s1) (eval_rexpr ctx s2) with
      | Absoff.Refuted ->
        fail "vshiftpair halves' %s %a and %a provably differ" kind Rexpr.pp
          s1 Rexpr.pp s2
      | Absoff.Proved | Absoff.Unknown -> ()
  in
  let rec lock a b =
    match (a, b) with
    | Expr.Load p, Expr.Load q ->
      (* Two legitimate register distances: V bytes when the shiftpair
         advances the raw array stream (stride-one streams, and the
         inner gather combines of a strided stream), and [scale * V]
         bytes when it advances a packed strided stream (one packed
         register consumes [scale] raw registers). Counter-free
         addresses (scale 0, specialized epilogues) lost the original
         stride, so any positive whole number of registers is accepted
         there. *)
      let delta_bytes = (q.Addr.offset - p.Addr.offset) * ctx.elem in
      let adjacent =
        if p.Addr.scale >= 1 then
          delta_bytes = ctx.v || delta_bytes = p.Addr.scale * ctx.v
        else delta_bytes > 0 && delta_bytes mod ctx.v = 0
      in
      if
        not
          (p.Addr.array = q.Addr.array
          && p.Addr.scale = q.Addr.scale
          && adjacent)
      then
        fail "vshiftpair halves %s and %s are not adjacent registers"
          (Addr.to_string p) (Addr.to_string q)
    | Expr.Splat e1, Expr.Splat e2 when Ast.equal_expr e1 e2 -> ()
    | Expr.Op (o1, a1, b1), Expr.Op (o2, a2, b2) when o1 = o2 ->
      lock a1 a2;
      lock b1 b2
    | Expr.Shiftpair (a1, b1, s1), Expr.Shiftpair (a2, b2, s2) ->
      lock_amount "vshiftpair amounts" s1 s2;
      lock a1 a2;
      lock b1 b2
    | Expr.Splice (a1, b1, s1), Expr.Splice (a2, b2, s2) ->
      lock_amount "vsplice points" s1 s2;
      lock a1 a2;
      lock b1 b2
    | Expr.Pack (a1, b1), Expr.Pack (a2, b2) ->
      lock a1 a2;
      lock b1 b2
    | Expr.Cmp (c1, a1, b1), Expr.Cmp (c2, a2, b2) when c1 = c2 ->
      lock a1 a2;
      lock b1 b2
    | Expr.Sel (m1, a1, b1), Expr.Sel (m2, a2, b2) ->
      lock m1 m2;
      lock a1 a2;
      lock b1 b2
    | _ -> fail "vshiftpair halves are structurally dissimilar"
  in
  if not (vexpr_has_temp x || vexpr_has_temp y) then begin
    lock x y;
    if !ok then ctx.shifts_proved <- ctx.shifts_proved + 1
  end

(* Abstract-interpreter state threaded through a region. *)
type xstate = {
  env : Absoff.t SM.t;  (** temp -> abstract stream offset *)
  defs : Expr.vexpr SM.t;  (** temp -> defining expression *)
  defined : SS.t;  (** temps defined so far (def-before-use) *)
}

let empty_state = { env = SM.empty; defs = SM.empty; defined = SS.empty }

let rec eval_vexpr ctx ~quiet ~check_defs ~where st e : Absoff.t =
  let v = ctx.v in
  let go e = eval_vexpr ctx ~quiet ~check_defs ~where st e in
  match e with
  | Expr.Load a -> load_off ctx a
  | Expr.Splat _ -> Absoff.Bot
  | Expr.Temp x ->
    if check_defs && not quiet && not (SS.mem x st.defined) then
      report ctx ~rule:"def-before-use" ~severity:Error ~where
        (Printf.sprintf "temporary %s is read before any definition" x);
    (match SM.find_opt x st.env with Some o -> o | None -> Absoff.Top)
  | Expr.Op (op, a, b) ->
    let oa = go a and ob = go b in
    (match Absoff.cmp ~v oa ob with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.3" ~severity:Error ~where
          (Format.asprintf
             "operands of v%s at offsets %a vs %a violate (C.3)"
             (Pp.binop_symbol op) Absoff.pp oa Absoff.pp ob)
    | Absoff.Proved ->
      if not quiet then ctx.ops_proved <- ctx.ops_proved + 1
    | Absoff.Unknown -> ());
    Absoff.merge ~v oa ob
  | Expr.Shiftpair (x, y, s) when Expr.equal_vexpr x y ->
    (* Register rotation (reduction finalization): lane positions no
       longer denote stream offsets. The result is Top, not Bot — a
       half-reduced register is not lane-uniform, so treating it as
       "matches anything" would falsely discharge the (C.3) obligations
       of the combining ops downstream. *)
    if not quiet then
      range_check_amount ctx ~where ~kind:"vshiftpair amount"
        ~elem_multiple:true s;
    ignore (go x);
    Absoff.Top
  | Expr.Shiftpair (x, y, s) ->
    let ox = go x and oy = go y in
    (match Absoff.cmp ~v ox oy with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.3" ~severity:Error ~where
          (Format.asprintf
             "vshiftpair halves at offsets %a vs %a are not one stream"
             Absoff.pp ox Absoff.pp oy)
    | Absoff.Proved | Absoff.Unknown -> ());
    if not quiet then begin
      adjacency_check ctx ~where x y;
      range_check_amount ctx ~where ~kind:"vshiftpair amount"
        ~elem_multiple:true s
    end;
    (* Selecting V bytes starting [s] bytes into the pair moves the stream
       offset down by [s] (mod V) — both the left and right lowering of a
       [from -> to] stream shift reduce to this. *)
    Absoff.sub ~v (Absoff.merge ~v ox oy) (eval_rexpr ctx s)
  | Expr.Splice (x, y, p) ->
    let ox = go x and oy = go y in
    (match Absoff.cmp ~v ox oy with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.3" ~severity:Error ~where
          (Format.asprintf
             "vsplice operands at offsets %a vs %a violate (C.3)" Absoff.pp
             ox Absoff.pp oy)
    | Absoff.Proved | Absoff.Unknown -> ());
    if not quiet then
      range_check_amount ctx ~where ~kind:"vsplice point"
        ~elem_multiple:false p;
    Absoff.merge ~v ox oy
  | Expr.Pack (x, y) -> (
    let ox = go x and oy = go y in
    (* Strided gathers window every chunk to offset 0 before packing. *)
    match (ox, oy) with
    | Absoff.Byte 0, Absoff.Byte 0 -> Absoff.Byte 0
    | _ -> Absoff.Top)
  | Expr.Cmp (c, a, b) ->
    (* A vcmp is lane-wise like a vop: (C.3) is the same obligation, and
       the mask it produces inherits the common stream offset. *)
    let oa = go a and ob = go b in
    (match Absoff.cmp ~v oa ob with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.3" ~severity:Error ~where
          (Format.asprintf
             "operands of vcmp_%s at offsets %a vs %a violate (C.3)"
             (Simd_machine.Lane.cmp_name c) Absoff.pp oa Absoff.pp ob)
    | Absoff.Proved ->
      if not quiet then ctx.ops_proved <- ctx.ops_proved + 1
    | Absoff.Unknown -> ());
    Absoff.merge ~v oa ob
  | Expr.Sel (m, a, b) ->
    (* (C.3) is ternary for vsel: the mask and both arms must sit at one
       common offset, or lanes blend values from different iterations. *)
    let om = go m and oa = go a and ob = go b in
    let refuted =
      List.exists
        (fun (x, y) -> Absoff.cmp ~v x y = Absoff.Refuted)
        [ (om, oa); (om, ob); (oa, ob) ]
    in
    let proved =
      List.for_all
        (fun (x, y) -> Absoff.cmp ~v x y = Absoff.Proved)
        [ (om, oa); (om, ob); (oa, ob) ]
    in
    if refuted then begin
      if not quiet then
        report ctx ~rule:"C.3" ~severity:Error ~where
          (Format.asprintf
             "operands of vsel at offsets %a / %a / %a violate (C.3)"
             Absoff.pp om Absoff.pp oa Absoff.pp ob)
    end
    else if proved && not quiet then ctx.ops_proved <- ctx.ops_proved + 1;
    Absoff.merge ~v om (Absoff.merge ~v oa ob)

let stmt_label s =
  let full = Format.asprintf "%a" (Prog.pp_stmt ~indent:0) s in
  match String.index_opt full '\n' with
  | Some i -> String.sub full 0 i ^ " ..."
  | None -> full

(* Join at an [If]: keep what both branches agree on; a temp defined on
   either branch counts as defined (optimistic — this is a linter, false
   positives are worse than missed lints). *)
let join_xstate ctx st_t st_f =
  {
    env = Dataflow.join_env ~v:ctx.v st_t.env st_f.env;
    defs = SM.union (fun _ a _ -> Some a) st_t.defs st_f.defs;
    defined = SS.union st_t.defined st_f.defined;
  }

let exec_leaf ctx ~quiet ~check_defs ~region ~idx st (s : Expr.stmt) : xstate =
  let where = Printf.sprintf "%s#%d (%s)" region idx (stmt_label s) in
  match s with
  | Expr.Store (addr, value) ->
    let ov = eval_vexpr ctx ~quiet ~check_defs ~where st value in
    (* Store addresses are never rewritten by MemNorm: the address itself
       carries the alignment (C.2) is stated against. *)
    let oa = addr_off ctx addr in
    (match Absoff.cmp ~v:ctx.v ov oa with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.2" ~severity:Error ~where
          (Format.asprintf
             "root offset %a does not match store alignment %a (C.2)"
             Absoff.pp ov Absoff.pp oa)
    | Absoff.Proved ->
      if not quiet then ctx.stores_proved <- ctx.stores_proved + 1
    | Absoff.Unknown -> ());
    st
  | Expr.Storem (addr, value, mask) ->
    let ov = eval_vexpr ctx ~quiet ~check_defs ~where st value in
    let om = eval_vexpr ctx ~quiet ~check_defs ~where st mask in
    let oa = addr_off ctx addr in
    (match Absoff.cmp ~v:ctx.v ov oa with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.2" ~severity:Error ~where
          (Format.asprintf
             "root offset %a does not match store alignment %a (C.2)"
             Absoff.pp ov Absoff.pp oa)
    | Absoff.Proved ->
      if not quiet then ctx.stores_proved <- ctx.stores_proved + 1
    | Absoff.Unknown -> ());
    (* The (C.2) analogue for masks: a mask lane guards the store lane at
       the same stream position, so the mask stream must reach the store
       alignment too. *)
    (match Absoff.cmp ~v:ctx.v om oa with
    | Absoff.Refuted ->
      if not quiet then
        report ctx ~rule:"C.2" ~severity:Error ~where
          (Format.asprintf
             "mask offset %a does not match store alignment %a ((C.2) for \
              masks)"
             Absoff.pp om Absoff.pp oa)
    | Absoff.Proved | Absoff.Unknown -> ());
    st
  | Expr.Assign (x, e) ->
    let o = eval_vexpr ctx ~quiet ~check_defs ~where st e in
    {
      env = SM.add x o st.env;
      defs = SM.add x e st.defs;
      defined = SS.add x st.defined;
    }
  | Expr.If _ ->
    (* guards are handled structurally by [Dataflow.forward] *)
    st

(* Range-check the guard operands of an [If] before its branches run. *)
let guard_checks ctx ~quiet ~region ~idx (_ : xstate) (s : Expr.stmt) =
  match s with
  | Expr.If (c, _, _) when not quiet ->
    let where = Printf.sprintf "%s#%d (%s)" region idx (stmt_label s) in
    let a, b =
      match c with
      | Rexpr.Ge (a, b) | Rexpr.Gt (a, b) | Rexpr.Le (a, b) | Rexpr.Lt (a, b)
        ->
        (a, b)
    in
    range_check_rexpr ctx ~where ~kind:"guard operand" a;
    range_check_rexpr ctx ~where ~kind:"guard operand" b
  | _ -> ()

let exec_stmts ctx ~quiet ~check_defs ~region idx0 st stmts =
  Dataflow.forward
    ~leaf:(fun ~idx st s -> exec_leaf ctx ~quiet ~check_defs ~region ~idx st s)
    ~guard:(fun ~idx st s -> guard_checks ctx ~quiet ~region ~idx st s)
    ~join:(join_xstate ctx) ~idx0 st stmts

let exec_region ctx ~quiet ~check_defs ~region st stmts =
  exec_stmts ctx ~quiet ~check_defs ~region 0 st stmts

(* ------------------------------------------------------------------ *)
(* Body well-formedness: the carried-temp seam discipline               *)
(* ------------------------------------------------------------------ *)

(* A temp that is live into the body (read before any body definition)
   names a loop-carried register. The unroll pass keeps every seam restore
   at the end of the body, and modulo variable expansion renames all
   intermediate uses — so in well-formed code a carried name is (a)
   initialized by the prologue and (b) defined at most once per body
   (unrolling's seam-restore coalescer legitimately renames a later
   definition onto a carried name, so re-definition is a lint, not an
   error; the seam *semantics* are verified separately by
   {!check_unroll}'s translation validation). The carried-temp discovery
   itself is the reaching-definitions analysis of the dataflow library. *)
let body_wf ctx ~prologue_defined body =
  List.iter
    (fun (c : Dataflow.Reach.carried) ->
      if not (SS.mem c.ca_name prologue_defined) then
        report ctx ~rule:"def-before-use" ~severity:Error
          ~where:(Printf.sprintf "body#%d" c.ca_first_read)
          (Printf.sprintf
             "loop-carried temporary %s is read before any definition (not \
              initialized by the prologue)"
             c.ca_name);
      match c.ca_first_def with
      | Some d when c.ca_def_count > 1 ->
        report ctx ~rule:"multi-def" ~severity:Warning
          ~where:(Printf.sprintf "body#%d" d)
          (Printf.sprintf
             "loop-carried temporary %s has multiple body definitions"
             c.ca_name)
      | Some _ | None -> ())
    (Dataflow.Reach.carried_temps body)

(* ------------------------------------------------------------------ *)
(* Unroll translation validation                                       *)
(* ------------------------------------------------------------------ *)

(* Value-numbering keys: symbolic values over loads at concrete
   (displaced) addresses, splats, and the live-in values of carried
   temporaries. Sharing keeps the representation linear in the body size
   where explicit substitution would blow up on deep carry chains. *)
type vn_key =
  | K_init of string  (** value a temporary carries into the body *)
  | K_load of Addr.t
  | K_splat of Ast.expr
  | K_op of Ast.binop * int * int
  | K_shiftpair of int * int * Rexpr.t
  | K_splice of int * int * Rexpr.t
  | K_pack of int * int
  | K_cmp of Simd_machine.Lane.cmp * int * int
  | K_sel of int * int * int
  | K_masked of int * int
      (** a masked store's observable value: (value, mask) *)

(* [check_unroll] validates the unroll pass semantically: executing the
   unrolled body once must leave every loop-carried temporary holding the
   same symbolic value as executing the original body [factor] times
   (instance [j] advanced [j*block] iterations), and must perform the
   same stores in the same order. This is the invariant the seam-restore
   coalescer can break (the PR-1 carry-chain miscompilation): renaming a
   definition onto a carried name another seam restore still reads makes
   that restore observe the overwritten value — a divergence no
   per-statement offset check can see, because the clobbering value sits
   at the same stream offset mod V. *)
let check_unroll ~analysis ~factor ~(pre : Expr.stmt list)
    ~(post : Expr.stmt list) : result =
  let ctx = make_ctx analysis in
  let has_if = List.exists (function Expr.If _ -> true | _ -> false) in
  if factor <= 1 || has_if pre || has_if post then result_of_ctx ctx
  else begin
    let table : (vn_key, int) Hashtbl.t = Hashtbl.create 256 in
    let next = ref 0 in
    let vn key =
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.add table key id;
        id
    in
    (* Both executions share one table, so equal value numbers mean
       structurally equal (fully substituted) expressions. *)
    let eval env ~disp e =
      let rec go e =
        match e with
        | Expr.Temp x -> (
          match SM.find_opt x env with
          | Some id -> id
          | None -> vn (K_init x))
        | Expr.Load a -> vn (K_load (Addr.shift_iter a ~by:disp))
        | Expr.Splat s -> vn (K_splat s)
        | Expr.Op (op, a, b) -> vn (K_op (op, go a, go b))
        | Expr.Shiftpair (a, b, s) ->
          vn (K_shiftpair (go a, go b, Expr.shift_iter_rexpr s ~by:disp))
        | Expr.Splice (a, b, p) ->
          vn (K_splice (go a, go b, Expr.shift_iter_rexpr p ~by:disp))
        | Expr.Pack (a, b) -> vn (K_pack (go a, go b))
        | Expr.Cmp (c, a, b) -> vn (K_cmp (c, go a, go b))
        | Expr.Sel (m, a, b) -> vn (K_sel (go m, go a, go b))
      in
      go e
    in
    let run stmts ~disps =
      List.fold_left
        (fun acc disp ->
          List.fold_left
            (fun (env, stores) s ->
              match s with
              | Expr.Assign (x, e) -> (SM.add x (eval env ~disp e) env, stores)
              | Expr.Store (a, e) ->
                ( env,
                  (Addr.shift_iter a ~by:disp, eval env ~disp e) :: stores )
              | Expr.Storem (a, e, m) ->
                ( env,
                  ( Addr.shift_iter a ~by:disp,
                    vn (K_masked (eval env ~disp e, eval env ~disp m)) )
                  :: stores )
              | Expr.If _ -> (env, stores))
            acc stmts)
        (SM.empty, []) disps
    in
    let ref_env, ref_stores =
      run pre ~disps:(List.init factor (fun j -> j * ctx.block))
    in
    let post_env, post_stores = run post ~disps:[ 0 ] in
    let ref_stores = List.rev ref_stores
    and post_stores = List.rev post_stores in
    (* Loop-carried temporaries: read before any definition in the
       original body. Each must end the unrolled body holding the value
       [factor] original iterations would have left in it. *)
    let live_in =
      List.map
        (fun c -> c.Dataflow.Reach.ca_name)
        (Dataflow.Reach.carried_temps pre)
    in
    let final env x =
      match SM.find_opt x env with Some id -> id | None -> vn (K_init x)
    in
    List.iter
      (fun x ->
        if final ref_env x = final post_env x then
          ctx.seams_proved <- ctx.seams_proved + 1
        else
          report ctx ~rule:"carried-clobber" ~severity:Error ~where:"body"
            (Printf.sprintf
               "loop-carried temporary %s does not hold its protocol value \
                after the unrolled body (factor %d) — a seam restore was \
                coalesced over a live carry"
               x factor))
      live_in;
    (if List.length ref_stores <> List.length post_stores then
       report ctx ~rule:"unroll-equiv" ~severity:Error ~where:"body"
         (Printf.sprintf
            "unrolled body performs %d stores where %d iterations of the \
             original body perform %d"
            (List.length post_stores) factor (List.length ref_stores))
     else
       List.iteri
         (fun k ((ra, rv), (pa, pv)) ->
           if not (Addr.equal ra pa && rv = pv) then
             report ctx ~rule:"unroll-equiv" ~severity:Error
               ~where:(Printf.sprintf "body store#%d" k)
               (Format.asprintf
                  "unrolled store to %a diverges from the original body's \
                   store to %a"
                  Addr.pp pa Addr.pp ra))
         (List.combine ref_stores post_stores));
    result_of_ctx ctx
  end

(* ------------------------------------------------------------------ *)
(* Body environment fixpoint                                            *)
(* ------------------------------------------------------------------ *)

(* The loop-entry environment is the offset analysis's widened fixpoint:
   its [eval] is the diagnostic-free mirror of [eval_vexpr], so the
   checked body pass below sees exactly the environment the quiet
   iteration settled on. *)
let body_entry_env ctx st0 body =
  let octx =
    {
      Dataflow.Offsets.v = ctx.v;
      elem = ctx.elem;
      lookup = lookup_base ctx;
      opaque_loads = ctx.opaque_loads;
    }
  in
  Dataflow.Offsets.entry octx st0.env body

(* ------------------------------------------------------------------ *)
(* Region driver                                                        *)
(* ------------------------------------------------------------------ *)

let run_regions ctx ~prologue ~body ~epilogues =
  let stp =
    exec_region ctx ~quiet:false ~check_defs:true ~region:"prologue"
      empty_state prologue
  in
  body_wf ctx ~prologue_defined:stp.defined body;
  let entry = body_entry_env ctx stp body in
  (* Reads of temps defined later in the body are legal exactly for the
     carried names [body_wf] vets, so the env pass runs def-check-free. *)
  let stb =
    exec_region ctx ~quiet:false ~check_defs:false ~region:"body"
      { stp with env = entry } body
  in
  let _ =
    List.fold_left
      (fun (st, k) seg ->
        ( exec_region ctx ~quiet:false ~check_defs:true
            ~region:(Printf.sprintf "epilogue[%d]" k) st seg,
          k + 1 ))
      (stb, 0) epilogues
  in
  stb

let check_regions ~analysis ?(loads_normalized = false) ~prologue ~body
    ~epilogues () =
  let ctx = make_ctx ~loads_normalized analysis in
  let _ = run_regions ctx ~prologue ~body ~epilogues in
  result_of_ctx ctx

(* ------------------------------------------------------------------ *)
(* Whole-program structural checks (Eqs. 8-16)                          *)
(* ------------------------------------------------------------------ *)

let epi_splice_elems ~v ~elem ~store_off ~trip =
  Util.pos_mod (store_off + (trip * elem)) v / elem

let trip_const_of (p : Prog.t) =
  match p.Prog.source.Ast.loop.Ast.trip with
  | Ast.Trip_const n -> Some n
  | Ast.Trip_param _ -> None

(* Recompute the steady-loop bounds from the source program (Eqs. 12/13/15)
   and compare with what codegen recorded. *)
let check_bounds ctx (p : Prog.t) =
  let where = "bounds" in
  if p.Prog.lower <> p.Prog.block then
    report ctx ~rule:"bounds" ~severity:Error ~where
      (Printf.sprintf "steady lower bound %d is not the block size %d (Eq. 12)"
         p.Prog.lower p.Prog.block);
  if p.Prog.min_trip <> 3 * p.Prog.block then
    report ctx ~rule:"bounds" ~severity:Error ~where
      (Printf.sprintf "trip guard %d is not 3B = %d (Eq. 16)" p.Prog.min_trip
         (3 * p.Prog.block));
  let store_offsets =
    List.map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Reduce _ -> Align.Known 0
        | Ast.Assign -> Analysis.offset_of ctx.analysis s.Ast.lhs)
      p.Prog.source.Ast.loop.Ast.body
  in
  let expected =
    match trip_const_of p with
    | Some trip when List.for_all Align.is_known store_offsets ->
      let max_epi =
        List.fold_left
          (fun acc o ->
            max acc
              (epi_splice_elems ~v:ctx.v ~elem:ctx.elem
                 ~store_off:(Align.known_exn o) ~trip))
          0 store_offsets
      in
      Prog.B_const (trip - max_epi)
    | _ -> Prog.B_trip_minus (ctx.block - 1)
  in
  if not (Prog.equal_bound p.Prog.upper expected) then
    report ctx ~rule:"bounds" ~severity:Error ~where
      (Format.asprintf
         "steady upper bound %a does not match the Eq. 13/15 recomputation \
          %a"
         Prog.pp_bound p.Prog.upper Prog.pp_bound expected);
  if p.Prog.epilogues <> [] then begin
    let n = List.length p.Prog.epilogues in
    if n <> p.Prog.unroll + 1 then
      report ctx ~rule:"bounds" ~severity:Error ~where
        (Printf.sprintf
           "%d epilogue segments for unroll factor %d (need unroll + 1 \
            virtual iterations)"
           n p.Prog.unroll)
  end

let check_peel ctx peel_amount (p : Prog.t) =
  List.iter
    (fun (r : Ast.mem_ref) ->
      match Analysis.offset_of ctx.analysis r with
      | Align.Runtime ->
        report ctx ~rule:"peel" ~severity:Error ~where:"peel"
          (Printf.sprintf
             "peeling baseline chose %d iterations but %s has a runtime \
              alignment"
             peel_amount r.Ast.ref_array)
      | Align.Known o ->
        if Util.pos_mod (o + (peel_amount * ctx.elem)) ctx.v <> 0 then
          report ctx ~rule:"peel" ~severity:Error ~where:"peel"
            (Printf.sprintf
               "peeling %d iterations leaves %s misaligned (offset %d, \
                residue %d)"
               peel_amount r.Ast.ref_array o
               (Util.pos_mod (o + (peel_amount * ctx.elem)) ctx.v)))
    (Ast.program_refs p.Prog.source)

(* Chase a temp through its (straight-line) defining expressions. *)
let resolve defs e =
  let rec go n e =
    match e with
    | Expr.Temp x when n > 0 -> (
      match SM.find_opt x defs with Some e' -> go (n - 1) e' | None -> e)
    | e -> e
  in
  go 8 e

(* Eq. 8: a prologue store either writes a fully aligned stream (offset
   provably 0) or splices the new bytes in above the store alignment. *)
let check_prologue_splices ctx defs prologue =
  List.iteri
    (fun i s ->
      match s with
      | Expr.Store (addr, value) | Expr.Storem (addr, value, _) -> (
        let where = Printf.sprintf "prologue#%d (%s)" i (stmt_label s) in
        let oa = addr_off ctx addr in
        match resolve defs value with
        | Expr.Splice (_, _, point) -> (
          match Absoff.cmp ~v:ctx.v (eval_rexpr ctx point) oa with
          | Absoff.Refuted ->
            report ctx ~rule:"prologue" ~severity:Error ~where
              (Format.asprintf
                 "prologue splice point %a does not match the store \
                  alignment %a (Eq. 8)"
                 Rexpr.pp point Absoff.pp oa)
          | Absoff.Proved | Absoff.Unknown -> ())
        | _ -> (
          match oa with
          | Absoff.Byte 0 -> ()
          | _ ->
            report ctx ~rule:"prologue" ~severity:Error ~where
              (Format.asprintf
                 "unspliced prologue store at alignment %a clobbers bytes \
                  below the stream (Eq. 8)"
                 Absoff.pp oa)))
      | Expr.Assign _ | Expr.If _ -> ())
    prologue

let rec seg_has_if seg =
  List.exists
    (function
      | Expr.If _ -> true
      | Expr.Store _ | Expr.Storem _ | Expr.Assign _ -> false)
    seg
  ||
  List.exists
    (function
      | Expr.If (_, t, f) -> seg_has_if t || seg_has_if f
      | _ -> false)
    seg

(* For a compile-time trip with specialized (guard-free) epilogues, every
   segment's stores must realize Eq. 9/14 exactly: with L = (ub - i)*D + o
   leftover bytes at virtual iteration i, a full store when L >= V, a
   splice at point L when 0 < L < V, and no store when L <= 0. *)
let check_specialized_epilogues ctx defs (p : Prog.t) trip =
  let exit = Prog.exit_counter p ~trip in
  let stored_arrays =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Reduce _ -> None
        | Ast.Assign -> (
          match Analysis.offset_of ctx.analysis s.Ast.lhs with
          | Align.Known o -> Some (s.Ast.lhs.Ast.ref_array, o)
          | Align.Runtime -> None))
      p.Prog.source.Ast.loop.Ast.body
  in
  (* skip arrays stored by more than one statement: ambiguous pairing *)
  let stored_arrays =
    List.filter
      (fun (a, _) ->
        List.length (List.filter (fun (b, _) -> a = b) stored_arrays) = 1)
      stored_arrays
  in
  List.iteri
    (fun k seg ->
      let i = exit + (k * p.Prog.block) in
      List.iter
        (fun (arr, o) ->
          let l = ((trip - i) * ctx.elem) + o in
          let where = Printf.sprintf "epilogue[%d]" k in
          let stores =
            List.filter_map
              (function
                | (Expr.Store (addr, value) | Expr.Storem (addr, value, _))
                  when addr.Addr.array = arr ->
                  Some value
                | _ -> None)
              seg
          in
          match stores with
          | [] ->
            if l > 0 then
              report ctx ~rule:"epilogue" ~severity:Error ~where
                (Printf.sprintf
                   "no store to %s at virtual iteration i=%d with %d \
                    leftover bytes (Eq. 14)"
                   arr i l)
          | value :: _ -> (
            if l <= 0 then
              report ctx ~rule:"epilogue" ~severity:Error ~where
                (Printf.sprintf
                   "store to %s at virtual iteration i=%d past the trip \
                    count (leftover %d bytes)"
                   arr i l)
            else
              match resolve defs value with
              | Expr.Splice (_, _, point) when Rexpr.is_const point ->
                let c = Rexpr.const_exn point in
                if l >= ctx.v then
                  report ctx ~rule:"epilogue" ~severity:Error ~where
                    (Printf.sprintf
                       "spliced store to %s where %d leftover bytes demand \
                        a full store"
                       arr l)
                else if c <> l then
                  report ctx ~rule:"epilogue" ~severity:Error ~where
                    (Printf.sprintf
                       "splice point %d for %s does not match the %d \
                        leftover bytes (Eq. 9)"
                       c arr l)
              | Expr.Splice _ -> ()
              | _ ->
                if l < ctx.v then
                  report ctx ~rule:"epilogue" ~severity:Error ~where
                    (Printf.sprintf
                       "full store to %s where only %d leftover bytes \
                        remain (Eq. 9)"
                       arr l)))
        stored_arrays)
    p.Prog.epilogues

let check_prog ?peel_amount ?(loads_normalized = false) ~analysis
    (p : Prog.t) =
  let ctx = make_ctx ~loads_normalized analysis in
  let st =
    run_regions ctx ~prologue:p.Prog.prologue ~body:p.Prog.body
      ~epilogues:p.Prog.epilogues
  in
  check_bounds ctx p;
  check_prologue_splices ctx st.defs p.Prog.prologue;
  (match (trip_const_of p, p.Prog.epilogues) with
  | Some trip, _ :: _
    when not (List.exists seg_has_if p.Prog.epilogues) ->
    check_specialized_epilogues ctx st.defs p trip
  | _ -> ());
  (match peel_amount with
  | Some pa -> check_peel ctx pa p
  | None -> ());
  result_of_ctx ctx
