(* Quickstart: the paper's Figure 1 loop, end to end.

   a[i+3] = b[i+1] + c[i+2] is trivially vectorizable on machines without
   alignment constraints, but no amount of loop peeling can align more than
   one of its three references. This example simdizes it under each shift
   placement policy, verifies every result against the scalar loop,
   and shows the generated vector IR and portable C.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
// The paper's running example (Figure 1), with all arrays 16-byte aligned:
// the references b[i+1], c[i+2], a[i+3] then have stream offsets 4, 8, 12.
int32 a[128] @ 0;
int32 b[128] @ 0;
int32 c[128] @ 0;
for (i = 0; i < 100; i++) {
  a[i+3] = b[i+1] + c[i+2];
}
|}

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== Input loop ===@.%s@." (Simd.Pp.program_to_string program);

  (* Alignment analysis: every reference is misaligned. *)
  let analysis = Simd.Analysis.check_exn ~machine:Simd.Machine.default program in
  Format.printf "Stream offsets:@.";
  List.iter
    (fun (r, o) ->
      Format.printf "  %-8s -> %a@." (Simd.Pp.mem_ref_to_string r) Simd.Align.pp o)
    analysis.Simd.Analysis.offsets;
  Format.printf "misaligned references: %.0f%%@.@."
    (100.0 *. Simd.Analysis.misaligned_fraction analysis);

  (* Loop peeling (the prior-work baseline) cannot handle this loop. *)
  Format.printf "Loop-peeling baseline: %a@.@." Simd.Peel.pp_verdict
    (Simd.Peel.check analysis);

  (* Simdize under each policy; verify each against the scalar loop. *)
  List.iter
    (fun policy ->
      let config =
        { Simd.Driver.default with Simd.Driver.policy; reassoc = false }
      in
      let sample, opd, speedup = Simd.measure ~config program in
      let verified =
        match Simd.verify ~config program with Ok () -> "OK" | Error m -> m
      in
      Format.printf
        "%-9s: %2d stream shifts in the graph; %.2f ops/datum; speedup %.2fx; \
         verify %s@."
        (Simd.Policy.name policy)
        (Simd.Util.sum_by
           (fun (_, g) -> Simd.Graph.graph_shift_count g)
           (match Simd.simdize ~config program with
           | Simd.Driver.Simdized o -> o.Simd.Driver.graphs
           | Simd.Driver.Scalar _ -> []))
        opd speedup verified;
      ignore sample)
    Simd.Policy.all;

  (* Show the best code. *)
  let config = { Simd.Driver.default with Simd.Driver.policy = Simd.Policy.Lazy } in
  let o = Simd.simdize_exn ~config program in
  Format.printf "@.=== Vector IR (lazy-shift + software pipelining) ===@.%s@."
    (Simd.Vir_prog.to_string o.Simd.Driver.prog);
  Format.printf "=== Portable C (kernel only; see --emit altivec/sse too) ===@.%s@."
    (Simd.Emit_portable.kernel o.Simd.Driver.prog)
