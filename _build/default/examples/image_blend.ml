(* Alpha blending of two image rows — the multimedia workload class that
   motivated SIMD extensions (paper §1).

   out = alpha*src + (wmax - alpha)*dst on 16-bit pixels, 8 per vector. The
   rows come from different images whose strides leave every row with a
   different, nonzero misalignment — the exact situation where
   peeling-based vectorizers give up and this paper's scheme reaches near
   peak speedup. The loop-invariant weights exercise vsplat handling.

   Run with:  dune exec examples/image_blend.exe *)

let source =
  {|
// One row of a 16-bit image blend. Base alignments model rows taken from
// the middle of differently-strided images (all misaligned differently).
int16 out[2100]  @ 6;
int16 srcp[2100] @ 2;
int16 dstp[2100] @ 12;
param alpha;
param walpha;     // wmax - alpha, precomputed by the caller
for (i = 0; i < 2048; i++) {
  out[i] = alpha * srcp[i+1] + walpha * dstp[i+2];
}
|}

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== 16-bit alpha blend, all rows misaligned ===@.%s@."
    (Simd.Pp.program_to_string program);
  let config =
    { Simd.Driver.default with Simd.Driver.policy = Simd.Policy.Lazy }
  in
  (* Blend weights: alpha in [0, 256]. *)
  let params = [ ("alpha", 80L); ("walpha", 176L) ] in
  (match
     Simd.simdize ~config program
   with
  | Simd.Driver.Scalar r ->
    Format.printf "left scalar: %a@." Simd.Driver.pp_reason r
  | Simd.Driver.Simdized o ->
    let setup =
      Simd.Sim_run.prepare ~params ~machine:config.Simd.Driver.machine program
    in
    (match Simd.Sim_run.verify setup o.Simd.Driver.prog with
    | Ok () -> Format.printf "verify: simdized blend == scalar blend@."
    | Error m -> Format.printf "verify FAILED: %a@." Simd.Sim_run.pp_mismatch m);
    let r = Simd.Sim_run.run_simd setup o.Simd.Driver.prog in
    let c = r.Simd.Sim_run.counts in
    Format.printf
      "dynamic ops: %d loads, %d stores, %d arith, %d splats, %d shifts@."
      c.Simd.Exec.vloads c.Simd.Exec.vstores c.Simd.Exec.vops c.Simd.Exec.vsplats
      c.Simd.Exec.vshifts;
    let sample, opd, speedup = Simd.measure ~config program in
    Format.printf "ops/datum %.3f (peak speedup %d, achieved %.2fx, LB bound %.2fx)@."
      opd
      (Simd.Machine.blocking_factor config.Simd.Driver.machine ~elem:2)
      speedup
      (Simd.Measure.lb_speedup sample);
    (* Show a few blended pixels from the simulated memory. *)
    let layout = setup.Simd.Sim_run.layout in
    let mem = r.Simd.Sim_run.final_mem in
    Format.printf "first blended pixels:";
    for i = 0 to 7 do
      let addr = Simd.Layout.addr layout ~elem:2 ~name:"out" ~index:i in
      Format.printf " %Ld" (Simd.Mem.peek_scalar mem ~elem:2 addr)
    done;
    Format.printf "@.");
  (* And the AltiVec rendition, as the paper's compiler would emit. *)
  let o = Simd.simdize_exn ~config program in
  Format.printf "@.=== AltiVec kernel ===@.%s@."
    (Simd.Emit_altivec.unit o.Simd.Driver.prog)
