(* Deinterleaving complex data — the strided-load (gather) extension.

   Splitting interleaved re/im pairs (or RGBA channels, stereo samples, …)
   is the canonical non-unit-stride loop, which the paper lists as future
   work ("alignment handling of loops with non-unit stride accesses", §7).
   The extension lowers a stride-s load to s shifted windows combined by a
   log2(s)-level vpack tree (an AltiVec vec_perm / SSSE3 pshufb class
   operation), delivering the gathered stream at offset 0 — from where the
   ordinary placement policies take over. Adjacent windows share chunks and
   consecutive iterations share the boundary chunk, so with predictive
   commoning each chunk of the interleaved input is loaded exactly once.

   Run with:  dune exec examples/deinterleave.exe *)

let source =
  {|
// x holds interleaved (re, im) pairs; outputs are misaligned differently.
int32 re[1024] @ 0;
int32 im[1024] @ 4;
int32 x[2100]  @ 8;
param gain;
for (i = 0; i < 1000; i++) {
  re[i]   = x[2*i]   * gain;
  im[i+1] = x[2*i+1] * gain;
}
|}

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== Deinterleave: stride-2 gathers ===@.%s@."
    (Simd.Pp.program_to_string program);
  let config =
    { Simd.Driver.default with Simd.Driver.reuse = Simd.Driver.Predictive_commoning }
  in
  (match Simd.verify ~config program with
  | Ok () -> Format.printf "verify: gathered loops == scalar loops@."
  | Error m -> failwith m);
  let sample, opd, speedup = Simd.measure ~config program in
  let c = sample.Simd.Measure.counts in
  Format.printf
    "dynamic ops: %d loads, %d packs, %d shifts, %d stores — %.3f ops/datum, \
     %.2fx speedup@."
    c.Simd.Exec.vloads c.Simd.Exec.vpacks c.Simd.Exec.vshifts c.Simd.Exec.vstores
    opd speedup;
  (* Chunk economy: the interleaved input x is loaded exactly once per
     chunk across BOTH gathers. *)
  let o = Simd.simdize_exn ~config program in
  let setup = Simd.Sim_run.prepare ~machine:config.Simd.Driver.machine program in
  let r = Simd.Sim_run.run_simd ~tracing:true setup o.Simd.Driver.prog in
  let x_loads =
    List.filter
      (fun (t : Simd.Exec.trace_entry) ->
        t.Simd.Exec.segment = `Steady && t.Simd.Exec.array = "x")
      r.Simd.Sim_run.trace
  in
  let distinct =
    Simd.Util.dedup
      (List.map (fun (t : Simd.Exec.trace_entry) -> t.Simd.Exec.effective_addr) x_loads)
  in
  Format.printf "steady loads of x: %d over %d distinct chunks (exactly once: %b)@."
    (List.length x_loads) (List.length distinct)
    (List.length x_loads = List.length distinct);
  Format.printf "@.=== Vector IR ===@.%s@."
    (Simd.Vir_prog.to_string o.Simd.Driver.prog);
  Format.printf "=== SSE kernel (pshufb gather masks) ===@.%s@."
    (Simd.Emit_sse.unit o.Simd.Driver.prog)
