examples/runtime_align.mli:
