examples/deinterleave.mli:
