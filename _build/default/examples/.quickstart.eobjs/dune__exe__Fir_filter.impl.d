examples/fir_filter.ml: Format List Simd
