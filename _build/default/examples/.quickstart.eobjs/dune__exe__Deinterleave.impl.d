examples/deinterleave.ml: Format List Simd
