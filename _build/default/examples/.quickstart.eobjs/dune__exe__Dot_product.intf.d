examples/dot_product.mli:
