examples/fir_filter.mli:
