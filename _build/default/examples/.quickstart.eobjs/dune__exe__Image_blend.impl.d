examples/image_blend.ml: Format Simd
