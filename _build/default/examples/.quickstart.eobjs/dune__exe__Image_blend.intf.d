examples/image_blend.mli:
