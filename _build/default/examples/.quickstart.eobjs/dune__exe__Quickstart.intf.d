examples/quickstart.mli:
