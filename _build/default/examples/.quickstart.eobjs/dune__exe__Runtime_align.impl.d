examples/runtime_align.ml: Format List Simd String
