examples/dot_product.ml: Format List Simd
