examples/quickstart.ml: Format List Simd
