(* Dot product and extrema — the reduction extension.

   The paper leaves "accesses to scalar variables … occurring in non-address
   computation" as future work (§7); this example shows the data
   reorganization framework extending to reductions naturally:
   - the internal expression (a[i+1]*b[i+3]) still needs its operands at
     matching offsets, so the usual stream shifts appear;
   - the reduction stream is shifted to offset 0, making block i hold
     exactly iterations [i, i+B) — the epilogue masks the final partial
     block with the operator's identity via vsplice;
   - the final combine is log2(B) vshiftpair rotations (each lane ends up
     holding the total), merged with the accumulator cell's initial value
     and written back through a double vsplice that leaves neighbouring
     bytes untouched.

   Run with:  dune exec examples/dot_product.exe *)

let source =
  {|
int32 a[1100] @ 4;      // both inputs misaligned, differently
int32 b[1100] @ 8;
int32 dot[1]  @ 12;     // accumulator cells live wherever the caller put them
int32 hi[1]   @ 4;
for (i = 0; i < 1000; i++) {
  dot += a[i+1] * b[i+3];
  hi max= a[i+1];
}
|}

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== Dot product + running max over misaligned inputs ===@.%s@."
    (Simd.Pp.program_to_string program);
  let config =
    { Simd.Driver.default with Simd.Driver.policy = Simd.Policy.Dominant }
  in
  (match Simd.verify ~config program with
  | Ok () -> Format.printf "verify: vectorized reductions == scalar loop@."
  | Error m -> failwith m);
  let sample, opd, speedup = Simd.measure ~config program in
  Format.printf "ops/datum %.3f, speedup %.2fx (LB bound %.2fx)@." opd speedup
    (Simd.Measure.lb_speedup sample);
  (* Show the actual values once. *)
  let o = Simd.simdize_exn ~config program in
  let setup = Simd.Sim_run.prepare ~machine:config.Simd.Driver.machine program in
  let r = Simd.Sim_run.run_simd setup o.Simd.Driver.prog in
  let peek name =
    Simd.Mem.peek_scalar r.Simd.Sim_run.final_mem ~elem:4
      (Simd.Layout.addr setup.Simd.Sim_run.layout ~elem:4 ~name ~index:0)
  in
  Format.printf "dot = %Ld, max = %Ld (over the noise-filled inputs)@."
    (peek "dot") (peek "hi");
  (* The epilogue's horizontal reduction, in the IR. *)
  let epilogues = o.Simd.Driver.prog.Simd.Vir_prog.epilogues in
  let last = List.nth epilogues (List.length epilogues - 1) in
  Format.printf "@.=== Final combine (horizontal rotations + masked write-back) ===@.";
  List.iter
    (fun s -> Format.printf "%s" (Format.asprintf "%a" (Simd.Vir_prog.pp_stmt ~indent:2) s))
    last;
  (* And the generated C, compiled in the test suite with gcc. *)
  Format.printf "@.=== Portable C kernel ===@.%s@."
    (Simd.Emit_portable.kernel o.Simd.Driver.prog)
