(* Runtime alignment and unknown loop bounds (paper §4.4).

   A library routine receives pointers whose alignment the compiler cannot
   see (think memcpy-style interfaces) and a length known only at runtime.
   Eager/lazy/dominant placement need compile-time offsets, so the driver
   falls back to the zero-shift policy, whose shift directions are
   compile-time even though the amounts are runtime values: loads shift
   left to offset 0, stores shift right from offset 0. The steady-loop
   bounds come from Eq. 15 (UB = ub - B + 1) and the whole simdized body is
   guarded by ub > 3B with a scalar fallback.

   Run with:  dune exec examples/runtime_align.exe *)

let source =
  {|
int32 dst[4200] @ ?;   // '?' = base alignment unknown until runtime
int32 srca[4200] @ ?;
int32 srcb[4200] @ ?;
param n;
for (i = 0; i < n; i++) {
  dst[i] = srca[i+1] + srcb[i+3];
}
|}

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== Runtime alignments + runtime trip count ===@.%s@."
    (Simd.Pp.program_to_string program);
  (* Request the dominant policy: the driver must fall back to zero-shift. *)
  let config =
    { Simd.Driver.default with Simd.Driver.policy = Simd.Policy.Dominant }
  in
  let o = Simd.simdize_exn ~config program in
  Format.printf "requested policy: dominant; used per statement: %s@."
    (String.concat ", " (List.map Simd.Policy.name o.Simd.Driver.policies_used));
  Format.printf "@.=== Vector IR (note offset(...) runtime computations) ===@.%s@."
    (Simd.Vir_prog.to_string o.Simd.Driver.prog);
  (* Verify across many runtime situations: different actual alignments
     (drawn per seed) and trip counts, including the guard region. *)
  let failures = ref 0 in
  let checks = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun trip ->
          incr checks;
          let setup =
            Simd.Sim_run.prepare ~seed ~trip
              ~machine:config.Simd.Driver.machine program
          in
          match Simd.Sim_run.verify setup o.Simd.Driver.prog with
          | Ok () -> ()
          | Error m ->
            incr failures;
            Format.printf "seed %d trip %d: %a@." seed trip
              Simd.Sim_run.pp_mismatch m)
        [ 1; 7; 12; 13; 100; 1000; 4097 ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf
    "verified %d (alignment, trip) combinations, %d failures (trips <= %d use \
     the scalar fallback)@."
    !checks !failures
    o.Simd.Driver.prog.Simd.Vir_prog.min_trip;
  (* What does it cost? Compare with the same loop compiled with full
     alignment knowledge. *)
  let known =
    Simd.parse_exn
      {|
int32 dst[4200] @ 0;
int32 srca[4200] @ 12;
int32 srcb[4200] @ 4;
for (i = 0; i < 4096; i++) {
  dst[i] = srca[i+1] + srcb[i+3];
}
|}
  in
  let _, opd_rt, speedup_rt = Simd.measure ~config ~trip:4096 program in
  let _, opd_ct, speedup_ct = Simd.measure ~config known in
  Format.printf
    "@.alignment at runtime:      %.3f ops/datum, speedup %.2fx@." opd_rt
    speedup_rt;
  Format.printf "alignment at compile time: %.3f ops/datum, speedup %.2fx@."
    opd_ct speedup_ct;
  Format.printf
    "(the gap is the price of zero-shift + runtime shift computation — the \
     paper's Table 1 contrast)@."
