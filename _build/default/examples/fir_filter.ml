(* FIR filter: y[i] = c0*x[i] + c1*x[i+1] + c2*x[i+2] + c3*x[i+3].

   The four taps read the same array at four consecutive offsets — four
   misaligned streams over the same data. This is the workload where the
   paper's reuse machinery shines: memory normalization makes the loads of
   one 16-byte chunk syntactically identical, CSE merges them within an
   iteration, and software pipelining / predictive commoning carry them
   across iterations, so each chunk of x is loaded exactly once for the
   whole loop ("never load the same data twice").

   Run with:  dune exec examples/fir_filter.exe *)

let source =
  {|
int32 y[1100] @ 0;
int32 x[1100] @ 4;   // input deliberately misaligned by one element
param c0;
param c1;
param c2;
param c3;
for (i = 0; i < 1000; i++) {
  y[i] = c0 * x[i] + c1 * x[i+1] + c2 * x[i+2] + c3 * x[i+3];
}
|}

let measure ~reuse ~memnorm program =
  let config =
    {
      Simd.Driver.default with
      Simd.Driver.policy = Simd.Policy.Dominant;
      reuse;
      memnorm;
    }
  in
  let sample, opd, speedup = Simd.measure ~config program in
  (config, sample, opd, speedup)

let () =
  let program = Simd.parse_exn source in
  Format.printf "=== 4-tap FIR over a misaligned input ===@.%s@."
    (Simd.Pp.program_to_string program);
  let variants =
    [
      ("no reuse, no memnorm", Simd.Driver.No_reuse, false);
      ("no reuse, memnorm+cse", Simd.Driver.No_reuse, true);
      ("predictive commoning", Simd.Driver.Predictive_commoning, true);
      ("software pipelining ", Simd.Driver.Software_pipelining, true);
    ]
  in
  Format.printf "%-24s %8s %8s %8s %9s@." "variant" "vloads" "vshifts" "opd"
    "speedup";
  List.iter
    (fun (label, reuse, memnorm) ->
      let config, sample, opd, speedup = measure ~reuse ~memnorm program in
      (match Simd.verify ~config program with
      | Ok () -> ()
      | Error m -> failwith ("verification failed: " ^ m));
      Format.printf "%-24s %8d %8d %8.3f %8.2fx@." label
        sample.Simd.Measure.counts.Simd.Exec.vloads
        sample.Simd.Measure.counts.Simd.Exec.vshifts opd speedup)
    variants;
  (* The headline guarantee: with predictive commoning the steady-state loop
     loads each aligned chunk of x exactly once across all four taps —
     software pipelining alone guarantees this per static access (paper
     §1), and the general cross-access reuse is what MemNorm + PC add. *)
  let config, _, _, _ =
    measure ~reuse:Simd.Driver.Predictive_commoning ~memnorm:true program
  in
  let o = Simd.simdize_exn ~config program in
  let setup = Simd.Sim_run.prepare ~machine:config.Simd.Driver.machine program in
  let r = Simd.Sim_run.run_simd ~tracing:true setup o.Simd.Driver.prog in
  let steady_loads =
    List.filter
      (fun (t : Simd.Exec.trace_entry) ->
        t.Simd.Exec.segment = `Steady && t.Simd.Exec.array = "x")
      r.Simd.Sim_run.trace
  in
  let distinct =
    Simd.Util.dedup
      (List.map (fun (t : Simd.Exec.trace_entry) -> t.Simd.Exec.effective_addr)
         steady_loads)
  in
  Format.printf
    "@.steady-state loads of x: %d, distinct chunks touched: %d — every chunk \
     loaded exactly once: %b@."
    (List.length steady_loads) (List.length distinct)
    (List.length steady_loads = List.length distinct)
