(* Simulator tests: VIR execution semantics, dynamic counting, runtime
   expression evaluation, fallback behavior, and mismatch detection. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string

let test_counts_by_class () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nparam k;\n\
     for (i = 0; i < 100; i++) { a[i+3] = b[i+1] * k; }"
  in
  let program = parse src in
  let config = { Driver.default with Driver.reuse = Driver.No_reuse } in
  let o = Driver.simdize_exn config program in
  let setup = Sim_run.prepare ~machine program in
  let r = Sim_run.run_simd setup o.Driver.prog in
  let c = r.Sim_run.counts in
  (* 24 steady iterations: exactly one store per iteration... *)
  check_int "steady iterations" 24 c.Exec.steady_iterations;
  check_bool "stores ≈ iterations" true (c.Exec.vstores >= 24 && c.Exec.vstores <= 27);
  check_bool "splat hoisted: executed once" true (c.Exec.vsplats = 1);
  check_bool "muls each iteration" true (c.Exec.vops >= 24);
  check_bool "no fallback" true (r.Sim_run.fallback_counts = None)

let test_fallback_counts () =
  let src =
    "int32 a[64] @ 0;\nint32 b[64] @ 4;\nparam n;\n\
     for (i = 0; i < n; i++) { a[i] = b[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  let setup = Sim_run.prepare ~machine ~trip:5 program in
  let r = Sim_run.run_simd setup o.Driver.prog in
  (match r.Sim_run.fallback_counts with
  | Some c ->
    check_int "scalar loads" 5 c.Interp.loads;
    check_int "scalar stores" 5 c.Interp.stores
  | None -> Alcotest.fail "expected fallback");
  check_int "no vector ops" 0 (Exec.total r.Sim_run.counts)

let test_mismatch_detection () =
  (* Sabotage a correct program (flip a shift amount) and check the
     verifier notices — guards against a vacuous differential oracle. *)
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  let rec sabotage_expr (e : Vir_expr.vexpr) =
    match e with
    | Vir_expr.Shiftpair (a, b, Vir_rexpr.Const s) ->
      Vir_expr.Shiftpair (a, b, Vir_rexpr.Const ((s + 4) mod 16))
    | Vir_expr.Op (op, a, b) -> Vir_expr.Op (op, sabotage_expr a, sabotage_expr b)
    | e -> e
  in
  let bad =
    {
      o.Driver.prog with
      Vir_prog.body = Vir_expr.map_stmts_exprs sabotage_expr o.Driver.prog.Vir_prog.body;
    }
  in
  let setup = Sim_run.prepare ~machine program in
  (match Sim_run.verify setup o.Driver.prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean program must verify: %a" Sim_run.pp_mismatch m);
  match Sim_run.verify setup bad with
  | Error m -> check_bool "inside an array" true (m.Sim_run.in_array <> None)
  | Ok () -> Alcotest.fail "sabotaged program must not verify"

let test_guard_clobber_detection () =
  (* A full (unspliced) store in the epilogue would clobber guard bytes
     past the stream end; the whole-arena comparison must catch it. *)
  (* a has exactly trip elements, so an unspliced trailing store can only
     hit guard bytes *)
  let src =
    "int32 a[50] @ 0;\nint32 b[64] @ 4;\n\
     for (i = 0; i < 50; i++) { a[i] = b[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  let unsplice (s : Vir_expr.stmt) =
    match s with
    | Vir_expr.Store (a, Vir_expr.Splice (new_v, _, _)) -> Vir_expr.Store (a, new_v)
    | s -> s
  in
  let bad =
    { o.Driver.prog with
      Vir_prog.epilogues =
        List.map (List.map unsplice) o.Driver.prog.Vir_prog.epilogues }
  in
  let setup = Sim_run.prepare ~machine program in
  match Sim_run.verify setup bad with
  | Error m -> check_bool "clobber outside arrays" true (m.Sim_run.in_array = None)
  | Ok () -> Alcotest.fail "unspliced epilogue must clobber guards"

let test_runtime_offset_evaluation () =
  (* offset(&a[i+c]) at runtime = (base + (i+c)*D) & (V-1); exercise via a
     runtime-aligned loop and check the simdized result against scalar for
     several drawn alignments. *)
  let src =
    "int32 a[128] @ ?;\nint32 b[128] @ ?;\n\
     for (i = 0; i < 100; i++) { a[i+1] = b[i+2]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  List.iter
    (fun seed ->
      let setup = Sim_run.prepare ~seed ~machine program in
      match Sim_run.verify setup o.Driver.prog with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "seed %d: %s" seed (Format.asprintf "%a" Sim_run.pp_mismatch m))
    (List.init 16 (fun k -> k + 1))

let test_trace_segments () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 4;\n\
     for (i = 0; i < 100; i++) { a[i+3] = b[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  let setup = Sim_run.prepare ~machine program in
  let r = Sim_run.run_simd ~tracing:true setup o.Driver.prog in
  let seg s =
    List.length
      (List.filter (fun (t : Exec.trace_entry) -> t.Exec.segment = s) r.Sim_run.trace)
  in
  check_bool "prologue loads" true (seg `Prologue > 0);
  check_bool "steady loads" true (seg `Steady > 0);
  check_bool "epilogue loads" true (seg `Epilogue > 0);
  check_int "trace = total vloads" r.Sim_run.counts.Exec.vloads
    (List.length r.Sim_run.trace)

let test_unbound_temp_rejected () =
  let prog =
    let program = parse "int32 a[64] @ 0;\nfor (i = 0; i < 50; i++) { a[i] = 1; }" in
    let o = Driver.simdize_exn Driver.default program in
    { o.Driver.prog with
      Vir_prog.body =
        [ Vir_expr.Store
            ( { Vir_addr.array = "a"; offset = 0; scale = 1 },
              Vir_expr.Temp "nope" ) ] }
  in
  let setup =
    Sim_run.prepare ~machine
      (parse "int32 a[64] @ 0;\nfor (i = 0; i < 50; i++) { a[i] = 1; }")
  in
  Alcotest.check_raises "unbound temp"
    (Invalid_argument "Exec.vexpr_value: unbound temp \"nope\"") (fun () ->
      ignore (Sim_run.run_simd setup prog))

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "counts by class" `Quick test_counts_by_class;
        Alcotest.test_case "fallback counts" `Quick test_fallback_counts;
        Alcotest.test_case "mismatch detection" `Quick test_mismatch_detection;
        Alcotest.test_case "guard clobber detection" `Quick test_guard_clobber_detection;
        Alcotest.test_case "runtime offsets" `Quick test_runtime_offset_evaluation;
        Alcotest.test_case "trace segments" `Quick test_trace_segments;
        Alcotest.test_case "unbound temp rejected" `Quick test_unbound_temp_rejected;
      ] );
  ]
