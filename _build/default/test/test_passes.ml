(* Optimization pass tests: splat hoisting, memory normalization, local
   value numbering, predictive commoning, epilogue specialization, DCE. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string

let simdize_with config src = Driver.simdize_exn config (parse src)

let body_counts o = Vir_prog.body_counts o.Driver.prog

(* --- memnorm ---------------------------------------------------------- *)

let test_memnorm_merges_chunk_loads () =
  (* x[i] and x[i+1] land in the same chunk when x is misaligned by one
     element: with memnorm + cse they become one load. *)
  let src =
    "int32 y[128] @ 0;\nint32 x[128] @ 4;\n\
     for (i = 0; i < 100; i++) { y[i] = x[i] + x[i+1] + x[i+2]; }"
  in
  let with_norm =
    simdize_with { Driver.default with Driver.reuse = Driver.No_reuse } src
  in
  let without_norm =
    simdize_with
      { Driver.default with Driver.reuse = Driver.No_reuse; memnorm = false }
      src
  in
  check_bool "memnorm reduces loads" true
    ((body_counts with_norm).Vir_prog.loads
    < (body_counts without_norm).Vir_prog.loads)

let test_memnorm_rewrites_to_chunk_addresses () =
  let a = Analysis.check_exn ~machine
      (parse "int32 y[64] @ 0;\nint32 x[64] @ 8;\nfor (i = 0; i < 32; i++) { y[i] = x[i+1]; }")
  in
  (* x[i+1] has offset (8+4) = 12; normalized element offset 1 - 3 = -2 *)
  let stmts =
    Passes.memnorm ~analysis:a
      [ Vir_expr.Store
          ( { Vir_addr.array = "y"; offset = 0; scale = 1 },
            Vir_expr.Load { Vir_addr.array = "x"; offset = 1; scale = 1 } );
      ]
  in
  (match stmts with
  | [ Vir_expr.Store (st, Vir_expr.Load ld) ] ->
    check_int "store address untouched" 0 st.Vir_addr.offset;
    check_int "load normalized" (-2) ld.Vir_addr.offset
  | _ -> Alcotest.fail "shape")

(* --- cse --------------------------------------------------------------- *)

let test_cse_dedups_within_statement () =
  let src =
    "int32 y[128] @ 0;\nint32 z[128] @ 0;\nint32 x[128] @ 0;\n\
     for (i = 0; i < 100; i++) { y[i] = x[i+4] + x[i+4]; z[i] = x[i+4]; }"
  in
  let o = simdize_with { Driver.default with Driver.reuse = Driver.No_reuse } src in
  check_int "x loaded once per iteration" 1 (body_counts o).Vir_prog.loads

let test_cse_respects_store_kills () =
  (* A load of the stored array after the store must not reuse the value
     loaded before it. Construct the statement list manually (the frontend
     forbids such aliasing, but the pass must still be sound). *)
  let names = Names.create () in
  let y0 = { Vir_addr.array = "y"; offset = 0; scale = 1 } in
  let stmts =
    [
      Vir_expr.Assign ("before", Vir_expr.Load y0);
      Vir_expr.Store (y0, Vir_expr.Temp "before");
      Vir_expr.Assign ("after", Vir_expr.Load y0);
    ]
  in
  let out = Passes.cse ~names stmts in
  let loads = Vir_expr.count_nodes Vir_expr.is_load out in
  check_int "load after store survives" 2 loads

let test_cse_respects_temp_versions () =
  (* t := load x; a := t+t; t := load z; b := t+t — b must not reuse a. *)
  let names = Names.create () in
  let lx = Vir_expr.Load { Vir_addr.array = "x"; offset = 0; scale = 1 } in
  let lz = Vir_expr.Load { Vir_addr.array = "z"; offset = 0; scale = 1 } in
  let stmts =
    [
      Vir_expr.Assign ("t", lx);
      Vir_expr.Assign ("a", Vir_expr.Op (Ast.Add, Vir_expr.Temp "t", Vir_expr.Temp "t"));
      Vir_expr.Assign ("t", lz);
      Vir_expr.Assign ("b", Vir_expr.Op (Ast.Add, Vir_expr.Temp "t", Vir_expr.Temp "t"));
      Vir_expr.Store ({ Vir_addr.array = "y"; offset = 0; scale = 1 },
                      Vir_expr.Op (Ast.Add, Vir_expr.Temp "a", Vir_expr.Temp "b"));
    ]
  in
  let out = Passes.cse ~names stmts in
  let adds =
    Vir_expr.count_nodes (function Vir_expr.Op _ -> true | _ -> false) out
  in
  check_int "both adds computed" 3 adds

(* --- predictive commoning ---------------------------------------------- *)

let test_pc_equals_sp_on_loads_and_shifts () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  let pc =
    simdize_with { Driver.default with Driver.reuse = Driver.Predictive_commoning } src
  in
  let sp =
    simdize_with { Driver.default with Driver.reuse = Driver.Software_pipelining } src
  in
  check_int "same loads" (body_counts sp).Vir_prog.loads (body_counts pc).Vir_prog.loads;
  check_int "same shifts" (body_counts sp).Vir_prog.shifts (body_counts pc).Vir_prog.shifts

let test_pc_carries_across_chains () =
  (* offsets i, i+B, i+2B: a 3-link chain; only the highest loads. *)
  let src =
    "int32 y[256] @ 0;\nint32 x[256] @ 0;\n\
     for (i = 0; i < 200; i++) { y[i] = x[i] + x[i+4] + x[i+8]; }"
  in
  let o =
    simdize_with { Driver.default with Driver.reuse = Driver.Predictive_commoning } src
  in
  check_int "one real load" 1 (body_counts o).Vir_prog.loads;
  check_int "two carried copies" 2 (body_counts o).Vir_prog.copies

let test_pc_survives_doubling_expressions () =
  (* Value numbering shares subtrees; PC's expansion must not explode on
     deep doubling expressions (it gives up carrying instead). *)
  let rec doubled n = if n = 0 then "x[i]" else
    let inner = doubled (n - 1) in
    Printf.sprintf "(%s + %s)" inner inner
  in
  let src =
    (* depth 14: the CSE-shared value tree re-expands to 2^14 > budget *)
    Printf.sprintf
      "int32 y[128] @ 0;\nint32 x[128] @ 4;\n\
       for (i = 0; i < 100; i++) { y[i] = %s; }"
      (doubled 14)
  in
  let t0 = Sys.time () in
  let o =
    simdize_with { Driver.default with Driver.reuse = Driver.Predictive_commoning } src
  in
  check_bool "fast" true (Sys.time () -. t0 < 5.0);
  match Measure.verify ~config:o.Driver.config (parse src) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m

let test_pc_does_not_carry_invariants () =
  let src =
    "int32 y[128] @ 0;\nparam k;\nfor (i = 0; i < 100; i++) { y[i] = k; }"
  in
  let o =
    simdize_with { Driver.default with Driver.reuse = Driver.Predictive_commoning } src
  in
  check_int "no copies for invariants" 0 (body_counts o).Vir_prog.copies

(* --- specialization and dce -------------------------------------------- *)

let test_specialize_folds_counters () =
  let a =
    Analysis.check_exn ~machine
      (parse "int32 y[64] @ 0;\nint32 x[64] @ 4;\nfor (i = 0; i < 32; i++) { y[i] = x[i]; }")
  in
  let stmts =
    [
      Vir_expr.If
        ( Vir_rexpr.Ge
            ( Vir_rexpr.Add
                ( Vir_rexpr.Mul_const
                    (Vir_rexpr.Sub (Vir_rexpr.Trip, Vir_rexpr.Counter), 4),
                  Vir_rexpr.Const 0 ),
              Vir_rexpr.Const 16 ),
          [ Vir_expr.Store
              ( { Vir_addr.array = "y"; offset = 0; scale = 1 },
                Vir_expr.Load { Vir_addr.array = "x"; offset = 0; scale = 1 } );
          ],
          [] );
    ]
  in
  (* trip 32, i = 28: L = 16 >= 16: the store survives, frozen *)
  (match Passes.specialize ~analysis:a ~trip:(Some 32) ~i:(Some 28) stmts with
  | [ Vir_expr.Store (addr, _) ] ->
    check_bool "frozen" false (Vir_addr.with_counter addr);
    check_int "at 28" 28 addr.Vir_addr.offset
  | _ -> Alcotest.fail "guard should fold to the store");
  (* i = 32: L = 0 < 16: everything folds away *)
  match Passes.specialize ~analysis:a ~trip:(Some 32) ~i:(Some 32) stmts with
  | [] -> ()
  | _ -> Alcotest.fail "guard should fold to nothing"

let test_dce_removes_dead_chains () =
  let load name =
    Vir_expr.Load { Vir_addr.array = name; offset = 0; scale = 0 }
  in
  let segments =
    [
      [
        Vir_expr.Assign ("dead1", load "x");
        Vir_expr.Assign ("dead2", Vir_expr.Op (Ast.Add, Vir_expr.Temp "dead1", Vir_expr.Temp "dead1"));
        Vir_expr.Assign ("live", load "z");
      ];
      [ Vir_expr.Store ({ Vir_addr.array = "y"; offset = 0; scale = 0 },
                        Vir_expr.Temp "live") ];
    ]
  in
  match Passes.dce segments with
  | [ seg1; seg2 ] ->
    check_int "dead chain removed" 1 (List.length seg1);
    check_int "store kept" 1 (List.length seg2)
  | _ -> Alcotest.fail "segment count"

let test_dce_keeps_cross_segment_uses () =
  let segments =
    [
      [ Vir_expr.Assign ("t", Vir_expr.Load { Vir_addr.array = "x"; offset = 0; scale = 0 }) ];
      [ Vir_expr.Store ({ Vir_addr.array = "y"; offset = 0; scale = 0 }, Vir_expr.Temp "t") ];
    ]
  in
  match Passes.dce segments with
  | [ [ _ ]; [ _ ] ] -> ()
  | _ -> Alcotest.fail "cross-segment liveness broken"

let test_dce_liveness_is_polynomial () =
  (* Regression: liveness through conditionals must be a set union, not a
     list concatenation — the latter doubled per conditional and went
     exponential over many guarded epilogue segments. 60 nested-guard
     segments with shared temps must finish instantly. *)
  let guard k =
    Vir_expr.If
      ( Vir_rexpr.Gt (Vir_rexpr.Trip, Vir_rexpr.Const k),
        [ Vir_expr.Store
            ( { Vir_addr.array = "y"; offset = k; scale = 0 },
              Vir_expr.Op (Ast.Add, Vir_expr.Temp "a", Vir_expr.Temp "b") ) ],
        [ Vir_expr.Store
            ( { Vir_addr.array = "y"; offset = k; scale = 0 },
              Vir_expr.Op (Ast.Add, Vir_expr.Temp "b", Vir_expr.Temp "c") ) ] )
  in
  let seg = List.init 20 guard in
  let t0 = Sys.time () in
  let out = Passes.dce (List.init 60 (fun _ -> seg)) in
  check_bool "fast" true (Sys.time () -. t0 < 2.0);
  check_int "segments preserved" 60 (List.length out)

let test_dce_drops_empty_ifs () =
  let segments =
    [ [ Vir_expr.If (Vir_rexpr.Gt (Vir_rexpr.Trip, Vir_rexpr.Const 0),
          [ Vir_expr.Assign ("dead", Vir_expr.Load { Vir_addr.array = "x"; offset = 0; scale = 0 }) ],
          []) ] ]
  in
  match Passes.dce segments with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "empty if should disappear"

(* --- splat hoisting ----------------------------------------------------- *)

let test_hoist_dedups_equal_splats () =
  let src =
    "int32 y[128] @ 0;\nint32 z[128] @ 0;\nparam k;\n\
     for (i = 0; i < 100; i++) { y[i] = k + 1; z[i] = k + 1; }"
  in
  let o = simdize_with Driver.default src in
  let prologue_splats =
    (Vir_prog.static_counts_of_stmts o.Driver.prog.Vir_prog.prologue).Vir_prog.splats
  in
  check_int "one shared splat" 1 prologue_splats;
  check_int "no body splats" 0 (body_counts o).Vir_prog.splats

let test_hoist_disabled () =
  let src =
    "int32 y[128] @ 0;\nparam k;\nfor (i = 0; i < 100; i++) { y[i] = k; }"
  in
  let o = simdize_with { Driver.default with Driver.hoist_splats = false } src in
  check_int "splat stays in body" 1 (body_counts o).Vir_prog.splats

let suite =
  [
    ( "passes",
      [
        Alcotest.test_case "memnorm merges chunk loads" `Quick
          test_memnorm_merges_chunk_loads;
        Alcotest.test_case "memnorm chunk addresses" `Quick
          test_memnorm_rewrites_to_chunk_addresses;
        Alcotest.test_case "cse dedups" `Quick test_cse_dedups_within_statement;
        Alcotest.test_case "cse store kills" `Quick test_cse_respects_store_kills;
        Alcotest.test_case "cse temp versions" `Quick test_cse_respects_temp_versions;
        Alcotest.test_case "pc == sp on loads/shifts" `Quick
          test_pc_equals_sp_on_loads_and_shifts;
        Alcotest.test_case "pc chains" `Quick test_pc_carries_across_chains;
        Alcotest.test_case "pc skips invariants" `Quick test_pc_does_not_carry_invariants;
        Alcotest.test_case "pc doubling budget" `Quick
          test_pc_survives_doubling_expressions;
        Alcotest.test_case "specialize folds" `Quick test_specialize_folds_counters;
        Alcotest.test_case "dce dead chains" `Quick test_dce_removes_dead_chains;
        Alcotest.test_case "dce cross-segment" `Quick test_dce_keeps_cross_segment_uses;
        Alcotest.test_case "dce empty ifs" `Quick test_dce_drops_empty_ifs;
        Alcotest.test_case "dce polynomial liveness" `Quick
          test_dce_liveness_is_polynomial;
        Alcotest.test_case "splat hoist dedup" `Quick test_hoist_dedups_equal_splats;
        Alcotest.test_case "splat hoist disabled" `Quick test_hoist_disabled;
      ] );
  ]
