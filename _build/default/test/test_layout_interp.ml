(* Array placement and the reference scalar interpreter. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let parse = Parse.program_of_string

let test_layout_alignments () =
  let p =
    parse
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ 12;\n\
       for (i = 0; i < 32; i++) { a[i] = b[i] + c[i]; }"
  in
  let l = Layout.create ~machine p in
  check_int "a base mod 16" 0 (Layout.base l "a" mod 16);
  check_int "b base mod 16" 4 (Layout.base l "b" mod 16);
  check_int "c base mod 16" 12 (Layout.base l "c" mod 16);
  (* Guard space between arrays: at least 2V. *)
  let regions =
    List.map (fun (d : Ast.array_decl) -> Layout.array_region l ~program:p d.Ast.arr_name)
      p.Ast.arrays
    |> List.sort compare
  in
  let rec gaps = function
    | (b1, len1) :: ((b2, _) :: _ as rest) ->
      check_bool "gap >= 2V" true (b2 - (b1 + len1) >= 32);
      gaps rest
    | _ -> ()
  in
  gaps regions;
  check_bool "leading guard" true (fst (List.hd regions) >= 32);
  check_bool "arena covers" true
    (l.Layout.arena_size
    >= (let b, len = List.nth regions 2 in
        b + len + 32))

let test_layout_runtime_natural () =
  let p =
    parse "int16 a[64] @ ?;\nint16 b[64] @ ?;\nfor (i = 0; i < 32; i++) { a[i] = b[i]; }"
  in
  (* Runtime alignments drawn from a PRNG are naturally aligned and vary
     with the seed. *)
  let offsets =
    List.map
      (fun seed ->
        let prng = Prng.create ~seed in
        let l = Layout.create ~machine ~prng p in
        check_int "natural" 0 (Layout.base l "a" mod 2);
        Layout.base l "a" mod 16)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  check_bool "alignments vary" true (List.length (Util.dedup offsets) > 1)

let test_layout_addr () =
  let p = parse "int32 a[64] @ 8;\nfor (i = 0; i < 32; i++) { a[i] = 1; }" in
  let l = Layout.create ~machine p in
  check_int "addr arithmetic"
    (Layout.base l "a" + 12)
    (Layout.addr l ~elem:4 ~name:"a" ~index:3);
  check_int "actual offset"
    ((8 + 12) mod 16)
    (Layout.actual_offset l ~machine ~elem:4 { Ast.ref_array = "a"; ref_offset = 3; ref_stride = 1 })

let run_interp src ?(params = []) ?trip () =
  let p = parse src in
  let setup = Sim_run.prepare ~machine ~params ?trip p in
  let counts, mem = Sim_run.run_scalar setup in
  (p, setup, counts, mem)

let test_interp_values () =
  (* a[i] = b[i] + 2*c[i+1] with known contents *)
  let p, setup, _, mem =
    run_interp
      "int32 a[16] @ 0;\nint32 b[16] @ 4;\nint32 c[16] @ 8;\n\
       for (i = 0; i < 8; i++) { a[i] = b[i] + 2 * c[i+1]; }"
      ()
  in
  (* overwrite inputs with known values, re-run *)
  let mem2 = Sim_run.fresh_mem setup in
  for k = 0 to 15 do
    Mem.poke_scalar mem2 ~elem:4 (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"b" ~index:k)
      (Int64.of_int (10 * k));
    Mem.poke_scalar mem2 ~elem:4 (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"c" ~index:k)
      (Int64.of_int k)
  done;
  let env = Interp.make_env ~layout:setup.Sim_run.layout ~trip:8 () in
  ignore (Interp.run ~mem:mem2 ~env p);
  for k = 0 to 7 do
    check_i64
      (Printf.sprintf "a[%d]" k)
      (Int64.of_int ((10 * k) + (2 * (k + 1))))
      (Mem.peek_scalar mem2 ~elem:4
         (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"a" ~index:k))
  done;
  ignore mem

let test_interp_counts () =
  let _, _, counts, _ =
    run_interp
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ 8;\n\
       for (i = 0; i < 10; i++) { a[i] = b[i] + c[i+1] + 7; }"
      ()
  in
  check_int "loads" 20 counts.Interp.loads;
  check_int "stores" 10 counts.Interp.stores;
  check_int "ariths" 20 counts.Interp.ariths;
  check_int "total" 50 (Interp.total_ops counts)

let test_interp_ideal_formula () =
  let p =
    parse
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ 8;\n\
       for (i = 0; i < 10; i++) { a[i] = b[i] + c[i+1] + 7; }"
  in
  check_int "formula matches run" 50 (Interp.ideal_scalar_ops p ~trip:10);
  check_int "data" 10 (Interp.data_stored p ~trip:10)

let test_interp_params_and_widths () =
  let _, setup, _, mem =
    run_interp "int16 a[16] @ 0;\nparam w;\nfor (i = 0; i < 8; i++) { a[i] = w * w; }"
      ~params:[ ("w", 300L) ] ()
  in
  (* 300*300 = 90000 wraps mod 2^16 to 90000 - 65536 = 24464 *)
  check_i64 "wrap in interp" 24464L
    (Mem.peek_scalar mem ~elem:2 (Layout.addr setup.Sim_run.layout ~elem:2 ~name:"a" ~index:0))

let test_interp_runtime_trip () =
  let _, setup, counts, _ =
    run_interp "int32 a[64] @ 0;\nparam n;\nfor (i = 0; i < n; i++) { a[i] = 1; }"
      ~trip:13 ()
  in
  check_int "13 stores" 13 counts.Interp.stores;
  check_int "trip recorded" 13 setup.Sim_run.trip

let test_prepare_binds_trip_param () =
  let p = parse "int32 a[64] @ 0;\nparam n;\nfor (i = 0; i < n; i++) { a[i] = 1; }" in
  let setup = Sim_run.prepare ~machine ~trip:9 p in
  check_bool "n bound to trip" true (List.assoc "n" setup.Sim_run.params = 9L)

let suite =
  [
    ( "layout+interp",
      [
        Alcotest.test_case "placement honors alignments" `Quick test_layout_alignments;
        Alcotest.test_case "runtime placement natural+varied" `Quick
          test_layout_runtime_natural;
        Alcotest.test_case "address arithmetic" `Quick test_layout_addr;
        Alcotest.test_case "interp computes correct values" `Quick test_interp_values;
        Alcotest.test_case "interp ideal counts" `Quick test_interp_counts;
        Alcotest.test_case "ideal count formula" `Quick test_interp_ideal_formula;
        Alcotest.test_case "params + width wrap" `Quick test_interp_params_and_widths;
        Alcotest.test_case "runtime trip" `Quick test_interp_runtime_trip;
        Alcotest.test_case "prepare binds trip param" `Quick
          test_prepare_binds_trip_param;
      ] );
  ]
