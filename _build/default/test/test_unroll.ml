(* Loop unrolling with copy propagation (§4.5: "the copy operation can be
   easily removed by unrolling the loop twice and forward propagating the
   copy operation"). *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string

let fig1 =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"

let run_counts ~unroll ~reuse src =
  let config = { Driver.default with Driver.unroll; reuse } in
  let program = parse src in
  (match Measure.verify ~config program with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unroll %d: %s" unroll m);
  let o = Driver.simdize_exn config program in
  let setup = Sim_run.prepare ~machine program in
  let r = Sim_run.run_simd setup o.Driver.prog in
  (o.Driver.prog, r.Sim_run.counts)

let test_unroll2_removes_sp_copies () =
  let prog1, c1 = run_counts ~unroll:1 ~reuse:Driver.Software_pipelining fig1 in
  let prog2, c2 = run_counts ~unroll:2 ~reuse:Driver.Software_pipelining fig1 in
  (* steady-state copies vanish entirely: depth-1 carries rotate *)
  check_int "no copies in unrolled body" 0
    (Vir_prog.body_counts prog2).Vir_prog.copies;
  check_bool "dynamic copies nearly gone" true
    (c2.Exec.copies * 10 < c1.Exec.copies);
  (* same real work: loads and shifts unchanged *)
  check_int "same loads" c1.Exec.vloads c2.Exec.vloads;
  check_int "same shifts" c1.Exec.vshifts c2.Exec.vshifts;
  check_int "same stores" c1.Exec.vstores c2.Exec.vstores;
  ignore prog1

let test_unrolled_body_is_doubled () =
  let prog1, _ = run_counts ~unroll:1 ~reuse:Driver.Software_pipelining fig1 in
  let prog2, _ = run_counts ~unroll:2 ~reuse:Driver.Software_pipelining fig1 in
  let b1 = Vir_prog.body_counts prog1 in
  let b2 = Vir_prog.body_counts prog2 in
  check_int "stores doubled" (2 * b1.Vir_prog.stores) b2.Vir_prog.stores;
  check_int "shifts doubled" (2 * b1.Vir_prog.shifts) b2.Vir_prog.shifts;
  check_int "unroll recorded" 2 prog2.Vir_prog.unroll;
  check_int "step doubled" (2 * prog2.Vir_prog.block) (Vir_prog.step prog2)

let test_epilogue_count () =
  let prog4, _ = run_counts ~unroll:4 ~reuse:Driver.Software_pipelining fig1 in
  check_int "unroll+1 virtual epilogue iterations" 5
    (List.length prog4.Vir_prog.epilogues)

let test_unroll_pc_chain_copies_divided () =
  (* depth-2 PC chain: x[i], x[i+4], x[i+8] — per-iteration copies 2; with
     unroll 2, the per-unrolled-body restores stay <= 2, i.e. <= 1 per
     original iteration. *)
  let src =
    "int32 y[256] @ 0;\nint32 x[256] @ 0;\n\
     for (i = 0; i < 200; i++) { y[i] = x[i] + x[i+4] + x[i+8]; }"
  in
  let prog1, _ = run_counts ~unroll:1 ~reuse:Driver.Predictive_commoning src in
  let prog2, _ = run_counts ~unroll:2 ~reuse:Driver.Predictive_commoning src in
  let per_iter1 = (Vir_prog.body_counts prog1).Vir_prog.copies in
  let per_2iter2 = (Vir_prog.body_counts prog2).Vir_prog.copies in
  check_bool
    (Printf.sprintf "copy frequency reduced (%d/iter -> %d/2iter)" per_iter1
       per_2iter2)
    true
    (per_2iter2 < 2 * per_iter1)

let test_unroll_runtime_variants () =
  List.iter
    (fun unroll ->
      let config = { Driver.default with Driver.unroll } in
      (* runtime alignments *)
      let src_ra =
        "int32 a[256] @ ?;\nint32 b[256] @ ?;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+2]; }"
      in
      (match Measure.verify ~config (parse src_ra) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "runtime-align unroll %d: %s" unroll m);
      (* runtime trip: many trip values, including ones leaving 0..unroll
         residual simdized iterations *)
      let src_rt =
        "int32 a[256] @ 4;\nint32 b[256] @ 8;\nparam n;\n\
         for (i = 0; i < n; i++) { a[i+2] = b[i+1]; }"
      in
      List.iter
        (fun trip ->
          match Measure.verify ~config ~trip (parse src_rt) with
          | Ok () -> ()
          | Error m -> Alcotest.failf "trip %d unroll %d: %s" trip unroll m)
        [ 13; 14; 15; 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 50; 97; 98; 99; 100 ])
    [ 2; 3; 4 ]

let prop_unroll_differential =
  QCheck.Test.make ~count:120 ~name:"unrolled random loops verify"
    QCheck.(
      triple (int_range 2 4) (int_range 1 3)
        (pair (int_range 1 4) (int_range 0 1000)))
    (fun (unroll, stmts, (loads, seed)) ->
      let spec =
        {
          Synth.default_spec with
          Synth.stmts;
          loads_per_stmt = loads;
          trip = 120 + (seed mod 60);
          seed;
        }
      in
      let program = Synth.generate ~machine spec in
      List.for_all
        (fun reuse ->
          let config = { Driver.default with Driver.unroll; reuse } in
          match Measure.verify ~config program with
          | Ok () -> true
          | Error m ->
            QCheck.Test.fail_reportf "unroll %d %s: %s" unroll
              (Driver.reuse_name reuse) m)
        [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ])

let suite =
  [
    ( "unroll",
      [
        Alcotest.test_case "unroll 2 removes SP copies" `Quick
          test_unroll2_removes_sp_copies;
        Alcotest.test_case "body doubled" `Quick test_unrolled_body_is_doubled;
        Alcotest.test_case "epilogue count" `Quick test_epilogue_count;
        Alcotest.test_case "PC chain copy frequency" `Quick
          test_unroll_pc_chain_copies_divided;
        Alcotest.test_case "runtime variants" `Quick test_unroll_runtime_variants;
        QCheck_alcotest.to_alcotest prop_unroll_differential;
      ] );
  ]
