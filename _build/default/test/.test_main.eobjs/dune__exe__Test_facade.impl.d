test/test_facade.ml: Alcotest Ast Driver List Simd String Vir_prog
