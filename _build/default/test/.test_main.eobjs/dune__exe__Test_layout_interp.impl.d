test/test_layout_interp.ml: Alcotest Ast Int64 Interp Layout List Machine Mem Parse Printf Prng Sim_run Simd Util
