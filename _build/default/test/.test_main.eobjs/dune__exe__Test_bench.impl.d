test/test_bench.ml: Alcotest Analysis Ast Driver Lb List Machine Measure Parse Policy Simd String Suite Synth Util
