test/test_reassoc.ml: Alcotest Analysis Ast Driver Fun Graph List Machine Measure Parse Policy Printf QCheck QCheck_alcotest Reassoc Simd String Util
