test/test_policies.ml: Alcotest Analysis Ast Fun Graph Lb List Machine Offset Parse Policy Printf QCheck QCheck_alcotest Result Simd String
