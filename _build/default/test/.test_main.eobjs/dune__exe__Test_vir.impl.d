test/test_vir.ml: Alcotest Ast Driver List Parse Printf Simd String Vir_addr Vir_expr Vir_prog Vir_rexpr
