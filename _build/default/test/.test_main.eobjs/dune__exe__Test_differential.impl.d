test/test_differential.ml: Alcotest Ast Driver Exec Format Hashtbl List Machine Measure Option Parse Policy Printf QCheck QCheck_alcotest Sim_run Simd String Synth Util
