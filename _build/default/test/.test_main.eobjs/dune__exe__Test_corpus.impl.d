test/test_corpus.ml: Alcotest Array Ast Driver Emit_portable Filename Format Fun List Measure Option Parse Policy Pp Simd String Sys
