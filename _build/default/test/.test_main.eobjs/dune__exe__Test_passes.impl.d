test/test_passes.ml: Alcotest Analysis Ast Driver List Machine Measure Names Parse Passes Printf Simd Sys Vir_addr Vir_expr Vir_prog Vir_rexpr
