test/test_parse.ml: Alcotest Ast Int64 List Parse Pp Printf QCheck QCheck_alcotest Simd String
