test/test_unroll.ml: Alcotest Driver Exec List Machine Measure Parse Printf QCheck QCheck_alcotest Sim_run Simd Synth Vir_prog
