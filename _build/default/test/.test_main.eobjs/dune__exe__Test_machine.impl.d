test/test_machine.ml: Alcotest Array Fun Gen Int64 Lane List Machine Mem Printf QCheck QCheck_alcotest Simd Vec
