test/test_sim.ml: Alcotest Driver Exec Format Interp List Machine Parse Sim_run Simd Vir_addr Vir_expr Vir_prog Vir_rexpr
