test/test_codegen.ml: Alcotest Ast Driver Format List Machine Measure Parse Policy Printf QCheck QCheck_alcotest Simd Vir_expr Vir_prog
