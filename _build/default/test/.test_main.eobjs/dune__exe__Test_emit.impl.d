test/test_emit.ml: Alcotest Ast C_syntax Driver Emit_altivec Emit_portable Emit_sse Filename List Parse Policy Printf Sim_run Simd String Sys
