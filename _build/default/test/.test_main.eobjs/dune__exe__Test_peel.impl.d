test/test_peel.ml: Alcotest Analysis Driver Machine Measure Parse Peel Simd Vir_prog
