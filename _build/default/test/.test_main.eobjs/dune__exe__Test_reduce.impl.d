test/test_reduce.ml: Alcotest Analysis Ast Driver Format Int64 Interp Lane Layout Lb List Machine Measure Mem Parse Policy Pp Printf Sim_run Simd Vir_expr Vir_prog
