test/test_analysis.ml: Alcotest Align Analysis Ast List Machine Parse Printf Simd
