test/test_support.ml: Alcotest Array Fun List Prng QCheck QCheck_alcotest Simd Util
