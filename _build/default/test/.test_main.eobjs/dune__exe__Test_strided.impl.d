test/test_strided.ml: Alcotest Analysis Ast Driver Exec Format Int64 List Machine Measure Parse Peel Policy Pp Printf Sim_run Simd String Util Vec Vir_prog
