(* Code-generation structure tests: steady-loop bounds (Eqs. 12/13/15),
   the trip-count guard, prologue/epilogue shape, and coverage of the
   store streams (every stream byte stored exactly by the right segment). *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string

let simdize ?(config = Driver.default) src =
  Driver.simdize_exn config (parse src)

let fig1 ?(trip = 100) () =
  Printf.sprintf
    "int32 a[%d] @ 0;\nint32 b[%d] @ 0;\nint32 c[%d] @ 0;\n\
     for (i = 0; i < %d; i++) { a[i+3] = b[i+1] + c[i+2]; }"
    (trip + 8) (trip + 8) (trip + 8) trip

let test_bounds_eq13 () =
  (* trip 100, store offset 12: EpiSplice = (12 + 400) mod 16 = 12, so
     UB = 100 - 3 = 97 (Eq. 13 via Eq. 9); LB = B = 4 (Eq. 12). *)
  let o = simdize (fig1 ()) in
  let p = o.Driver.prog in
  check_int "lower = B" 4 p.Vir_prog.lower;
  check_bool "upper = 97" true (p.Vir_prog.upper = Vir_prog.B_const 97);
  check_int "exit = 100" 100 (Vir_prog.exit_counter p ~trip:100);
  check_int "steady iterations" 24 (Vir_prog.steady_iterations p ~trip:100)

let test_bounds_eq15_runtime_trip () =
  let src =
    "int32 a[4096] @ 0;\nint32 b[4096] @ 4;\nparam n;\n\
     for (i = 0; i < n; i++) { a[i+3] = b[i+1]; }"
  in
  let o = simdize src in
  let p = o.Driver.prog in
  check_int "lower = B" 4 p.Vir_prog.lower;
  check_bool "upper = ub - B + 1" true (p.Vir_prog.upper = Vir_prog.B_trip_minus 3);
  check_int "guard = 3B" 12 p.Vir_prog.min_trip

let test_bounds_eq15_runtime_align () =
  let src =
    "int32 a[256] @ ?;\nint32 b[256] @ 0;\n\
     for (i = 0; i < 200; i++) { a[i] = b[i+1]; }"
  in
  let o = simdize src in
  check_bool "runtime align uses Eq. 15" true
    (o.Driver.prog.Vir_prog.upper = Vir_prog.B_trip_minus 3)

let test_trip_guard () =
  (* trip <= 3B stays scalar *)
  (match Driver.simdize Driver.default (parse (fig1 ~trip:12 ())) with
  | Driver.Scalar (Driver.Trip_too_small { trip = 12; needed = 12 }) -> ()
  | _ -> Alcotest.fail "trip 12 should stay scalar");
  match Driver.simdize Driver.default (parse (fig1 ~trip:13 ())) with
  | Driver.Simdized _ -> ()
  | Driver.Scalar r ->
    Alcotest.failf "trip 13 should simdize: %s"
      (Format.asprintf "%a" Driver.pp_reason r)

let test_prologue_has_splice_store () =
  (* misaligned store: prologue must splice into original memory *)
  let o = simdize (fig1 ()) in
  (* after CSE the splice may be bound to a temporary first; count nodes *)
  let counts = Vir_prog.static_counts_of_stmts o.Driver.prog.Vir_prog.prologue in
  check_bool "prologue splices" true (counts.Vir_prog.splices >= 1)

let test_prologue_aligned_store_plain () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i+1]; }"
  in
  let o = simdize src in
  let plain =
    List.exists
      (function
        | Vir_expr.Store (_, e) -> not (Vir_expr.is_shift e) && (match e with Vir_expr.Splice _ -> false | _ -> true)
        | _ -> false)
      o.Driver.prog.Vir_prog.prologue
  in
  check_bool "aligned store needs no splice" true plain

let test_steady_body_stores () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 x[128] @ 8;\nint32 y[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i+1] = b[i+2]; x[i] = y[i+3]; }"
  in
  let o = simdize src in
  let counts = Vir_prog.body_counts o.Driver.prog in
  check_int "two stores per iteration" 2 counts.Vir_prog.stores;
  check_int "no splices in steady state" 0 counts.Vir_prog.splices

(* Store-stream coverage: simulate and additionally recompute, per
   statement, which bytes each segment must store; the union must be
   exactly [0, trip*D) with no overlap... this is implied by the
   differential test, so here we only check the epilogue folds for nice
   compile-time cases. *)
let test_epilogue_specialized_empty_when_exact () =
  (* store aligned and trip a multiple of B: nothing left over. *)
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 4;\n\
     for (i = 0; i < 96; i++) { a[i] = b[i+1]; }"
  in
  let o = simdize src in
  let p = o.Driver.prog in
  List.iteri
    (fun k stmts ->
      check_int
        (Printf.sprintf "no epilogue stores (segment %d)" k)
        0
        (Vir_prog.static_counts_of_stmts stmts).Vir_prog.stores)
    p.Vir_prog.epilogues

let test_epilogue_two_partial_stores_when_large_leftover () =
  (* Single-statement Eq. 13 bounds are tight (leftover < V), so a second
     epilogue store needs differing store alignments: with trip 102, the
     aligned statement has EpiSplice 8 (2 elements) while the offset-12 one
     has 4, so UB = 100, exit = 100, and the offset-12 statement's leftover
     is (102-100)*4 + 12 = 20 >= 16: a full store at exit plus a partial
     store of 4 bytes at exit+B. *)
  let src =
    "int32 a[128] @ 0;\nint32 x[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\n\
     for (i = 0; i < 102; i++) { a[i] = b[i+1]; x[i+3] = c[i+2]; }"
  in
  let o = simdize src in
  let p = o.Driver.prog in
  let epi k =
    (Vir_prog.static_counts_of_stmts (List.nth p.Vir_prog.epilogues k))
      .Vir_prog.stores
  in
  check_int "partial(a) + full(x) at exit" 2 (epi 0);
  check_int "partial(x) at exit+B" 1 (epi 1);
  (* and of course it still verifies *)
  match Measure.verify ~config:Driver.default (parse src) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m

let test_runtime_epilogue_guarded () =
  let src =
    "int32 a[4096] @ 0;\nint32 b[4096] @ 4;\nparam n;\n\
     for (i = 0; i < n; i++) { a[i+3] = b[i+1]; }"
  in
  let o = simdize src in
  let has_if =
    List.exists
      (function Vir_expr.If _ -> true | _ -> false)
      (List.hd o.Driver.prog.Vir_prog.epilogues)
  in
  check_bool "guarded epilogue" true has_if

let test_sp_body_structure () =
  (* software pipelining: body contains carries old := new and exactly one
     load per misaligned stream *)
  let o =
    simdize
      ~config:{ Driver.default with Driver.policy = Policy.Zero }
      (fig1 ())
  in
  let body = o.Driver.prog.Vir_prog.body in
  let copies =
    List.length
      (List.filter
         (function Vir_expr.Assign (_, Vir_expr.Temp _) -> true | _ -> false)
         body)
  in
  check_bool "has carries" true (copies >= 2);
  let counts = Vir_prog.static_counts_of_stmts body in
  check_int "one load per load stream" 2 counts.Vir_prog.loads

let test_pc_inits_in_prologue () =
  let config =
    { Driver.default with Driver.reuse = Driver.Predictive_commoning }
  in
  let o = simdize ~config (fig1 ()) in
  let body_loads = (Vir_prog.body_counts o.Driver.prog).Vir_prog.loads in
  check_int "pc: one load per stream" 2 body_loads

let test_splat_hoisted () =
  let src =
    "int32 a[128] @ 4;\nparam x;\nparam y;\n\
     for (i = 0; i < 100; i++) { a[i] = x * y + 3; }"
  in
  let o = simdize src in
  let p = o.Driver.prog in
  check_int "no splats in body" 0 (Vir_prog.body_counts p).Vir_prog.splats;
  let prologue_splats =
    (Vir_prog.static_counts_of_stmts p.Vir_prog.prologue).Vir_prog.splats
  in
  check_int "one splat in prologue" 1 prologue_splats

let test_min_trip_is_3b () =
  List.iter
    (fun (ty, b) ->
      let src =
        Printf.sprintf
          "%s a[256] @ 0;\n%s q[256] @ %d;\nfor (i = 0; i < 200; i++) { a[i] = q[i+1]; }"
          ty ty (Ast.elem_width (Ast.elem_ty_of_width b) * 0)
      in
      ignore ty;
      let o = simdize src in
      check_int
        (Printf.sprintf "%s guard" ty)
        (3 * (16 / b))
        o.Driver.prog.Vir_prog.min_trip)
    [ ("int8", 1); ("int16", 2); ("int32", 4); ("int64", 8) ]

(* Property: exit counter lands in [UB, UB + B) ∩ multiples of B, i.e.
   within (ub - B, ub] for the runtime bound — the window that makes
   EpiLeftOver < 2V (§4.3/4.4). *)
let prop_exit_window =
  QCheck.Test.make ~count:300 ~name:"exit counter window"
    QCheck.(pair (int_range 13 2000) (int_range 0 3))
    (fun (trip, salign) ->
      let src =
        Printf.sprintf
          "int32 a[2100] @ %d;\nint32 b[2100] @ 4;\nparam n;\n\
           for (i = 0; i < n; i++) { a[i+%d] = b[i+1]; }"
          0 salign
      in
      let o = Driver.simdize_exn Driver.default (parse src) in
      let p = o.Driver.prog in
      let exit = Vir_prog.exit_counter p ~trip in
      exit mod p.Vir_prog.block = 0 && exit > trip - p.Vir_prog.block && exit <= trip)

let suite =
  [
    ( "codegen",
      [
        Alcotest.test_case "bounds Eq.12/13" `Quick test_bounds_eq13;
        Alcotest.test_case "bounds Eq.15 (runtime trip)" `Quick
          test_bounds_eq15_runtime_trip;
        Alcotest.test_case "bounds Eq.15 (runtime align)" `Quick
          test_bounds_eq15_runtime_align;
        Alcotest.test_case "ub > 3B guard" `Quick test_trip_guard;
        Alcotest.test_case "prologue splice store" `Quick test_prologue_has_splice_store;
        Alcotest.test_case "prologue aligned store plain" `Quick
          test_prologue_aligned_store_plain;
        Alcotest.test_case "steady body stores" `Quick test_steady_body_stores;
        Alcotest.test_case "epilogue empty when exact" `Quick
          test_epilogue_specialized_empty_when_exact;
        Alcotest.test_case "epilogue full+partial" `Quick
          test_epilogue_two_partial_stores_when_large_leftover;
        Alcotest.test_case "runtime epilogue guarded" `Quick
          test_runtime_epilogue_guarded;
        Alcotest.test_case "sp body structure" `Quick test_sp_body_structure;
        Alcotest.test_case "pc load counts" `Quick test_pc_inits_in_prologue;
        Alcotest.test_case "splats hoisted" `Quick test_splat_hoisted;
        Alcotest.test_case "guard is 3B for all widths" `Quick test_min_trip_is_3b;
        QCheck_alcotest.to_alcotest prop_exit_window;
      ] );
  ]
