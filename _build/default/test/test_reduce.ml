(* Reduction extension tests: parsing, scalar semantics, vectorized
   correctness across the configuration space, horizontal-reduction
   structure, and interplay with stores in the same loop. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let parse = Parse.program_of_string

let dot =
  "int32 a[256] @ 4;\nint32 b[256] @ 8;\nint32 sum[1] @ 12;\n\
   for (i = 0; i < 200; i++) { sum += a[i+1] * b[i+3]; }"

(* --- front end ---------------------------------------------------------- *)

let test_parse_forms () =
  let p =
    parse
      "int32 s[1];\nint32 p[1];\nint32 m[1];\nint32 mm[1];\nint32 aa[1];\n\
       int32 oo[1];\nint32 xx[1];\nint32 x[64];\n\
       for (i = 0; i < 32; i++) {\n\
       s += x[i];\n  p *= x[i];\n  m min= x[i];\n  mm max= x[i];\n\
       aa &= x[i];\n  oo |= x[i];\n  xx ^= x[i];\n}"
  in
  let kinds = List.map (fun (s : Ast.stmt) -> s.Ast.kind) p.Ast.loop.Ast.body in
  Alcotest.(check (list string))
    "operators"
    [ "add"; "mul"; "min"; "max"; "and"; "or"; "xor" ]
    (List.map
       (function
         | Ast.Reduce op -> Lane.binop_name op
         | Ast.Assign -> "assign")
       kinds)

let test_roundtrip () =
  let p = parse dot in
  let p' = parse (Pp.program_to_string p) in
  check_bool "round trip" true (Ast.equal_program p p')

let test_acc_cannot_be_loaded () =
  match
    Analysis.check ~machine
      (parse
         "int32 s[64];\nint32 x[64];\n\
          for (i = 0; i < 32; i++) { s += x[i]; x[i] = s[i]; }")
  with
  | Error (Analysis.Store_conflict _) -> ()
  | Ok _ -> Alcotest.fail "accumulator aliasing must be rejected"
  | Error e -> Alcotest.failf "wrong error: %s" (Analysis.error_to_string e)

let test_identities () =
  check_bool "add" true (Ast.reduction_identity Ast.Add ~ty:Ast.I32 = Some 0L);
  check_bool "mul" true (Ast.reduction_identity Ast.Mul ~ty:Ast.I32 = Some 1L);
  check_bool "and" true (Ast.reduction_identity Ast.And ~ty:Ast.I32 = Some (-1L));
  check_bool "min is max_value" true
    (Ast.reduction_identity Ast.Min ~ty:Ast.I16 = Some 32767L);
  check_bool "max is min_value" true
    (Ast.reduction_identity Ast.Max ~ty:Ast.I16 = Some (-32768L));
  check_bool "sub has none" true (Ast.reduction_identity Ast.Sub ~ty:Ast.I32 = None)

(* --- scalar semantics ---------------------------------------------------- *)

let test_scalar_reduction_value () =
  (* sum += i-th value with known contents; verify the final cell. *)
  let p =
    parse "int32 s[1] @ 0;\nint32 x[64] @ 4;\nfor (i = 0; i < 10; i++) { s += x[i]; }"
  in
  let setup = Sim_run.prepare ~machine p in
  let mem = Sim_run.fresh_mem setup in
  Mem.poke_scalar mem ~elem:4 (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"s" ~index:0) 100L;
  for k = 0 to 63 do
    Mem.poke_scalar mem ~elem:4
      (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"x" ~index:k)
      (Int64.of_int k)
  done;
  let env = Interp.make_env ~layout:setup.Sim_run.layout ~trip:10 () in
  let counts = Interp.run ~mem ~env p in
  check_i64 "100 + sum 0..9" 145L
    (Mem.peek_scalar mem ~elem:4
       (Layout.addr setup.Sim_run.layout ~elem:4 ~name:"s" ~index:0));
  (* ideal counts: 1 load + 1 accumulate per iteration, plus one load and
     one store for the hoisted accumulator *)
  check_int "loads" 11 counts.Interp.loads;
  check_int "stores" 1 counts.Interp.stores;
  check_int "ariths" 10 counts.Interp.ariths

(* --- vectorized correctness ---------------------------------------------- *)

let test_all_configs () =
  let program = parse dot in
  List.iter
    (fun policy ->
      List.iter
        (fun reuse ->
          List.iter
            (fun unroll ->
              let config = { Driver.default with Driver.policy; reuse; unroll } in
              match Measure.verify ~config program with
              | Ok () -> ()
              | Error m ->
                Alcotest.failf "%s/%s/u%d: %s" (Policy.name policy)
                  (Driver.reuse_name reuse) unroll m)
            [ 1; 2 ])
        [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ])
    Policy.all

let test_all_operators_widths () =
  List.iter
    (fun ty ->
      List.iter
        (fun opsym ->
          let src =
            Printf.sprintf
              "%s acc[1] @ 0;\n%s x[256] @ %d;\n\
               for (i = 0; i < 200; i++) { acc %s x[i+1]; }"
              ty ty
              (Ast.elem_width
                 (match ty with
                 | "int8" -> Ast.I8
                 | "int16" -> Ast.I16
                 | "int32" -> Ast.I32
                 | _ -> Ast.I64))
              opsym
          in
          match Measure.verify ~config:Driver.default (parse src) with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s %s: %s" ty opsym m)
        [ "+="; "*="; "min="; "max="; "&="; "|="; "^=" ])
    [ "int8"; "int16"; "int32"; "int64" ]

let test_trip_remainders () =
  (* every residue class of the trip count exercises a different epilogue
     masking length *)
  List.iter
    (fun trip ->
      let src =
        Printf.sprintf
          "int32 s[1] @ 8;\nint32 x[256] @ 12;\n\
           for (i = 0; i < %d; i++) { s += x[i+2]; }"
          trip
      in
      match Measure.verify ~config:Driver.default (parse src) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "trip %d: %s" trip m)
    [ 13; 14; 15; 16; 17; 96; 97; 98; 99; 100 ]

let test_runtime_everything () =
  let src =
    "int32 s[1] @ ?;\nint32 x[4200] @ ?;\nparam n;\n\
     for (i = 0; i < n; i++) { s += x[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  check_bool "zero fallback" true
    (List.for_all (( = ) Policy.Zero) o.Driver.policies_used);
  List.iter
    (fun seed ->
      List.iter
        (fun trip ->
          let setup = Sim_run.prepare ~seed ~machine ~trip program in
          match Sim_run.verify setup o.Driver.prog with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "seed %d trip %d: %s" seed trip
              (Format.asprintf "%a" Sim_run.pp_mismatch m))
        [ 5; 13; 50; 101; 4096 ])
    [ 1; 2; 3; 4 ]

let test_mixed_store_and_reduction () =
  let src =
    "int32 out[256] @ 4;\nint32 x[256] @ 8;\nint32 yy[256] @ 0;\nint32 s[1] @ 4;\n\
     for (i = 0; i < 150; i++) { out[i+2] = x[i+1] + yy[i+3]; s += x[i+1]; }"
  in
  List.iter
    (fun reuse ->
      let config = { Driver.default with Driver.reuse } in
      match Measure.verify ~config (parse src) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" (Driver.reuse_name reuse) m)
    [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ]

(* --- structure ------------------------------------------------------------ *)

let test_horizontal_rounds () =
  (* log2(B) = 2 rotate-and-combine rounds for int32, 3 for int16 *)
  let count_rounds src =
    let o = Driver.simdize_exn Driver.default (parse src) in
    let last = List.nth o.Driver.prog.Vir_prog.epilogues
        (List.length o.Driver.prog.Vir_prog.epilogues - 1) in
    Vir_expr.count_nodes Vir_expr.is_shift last
  in
  let r32 =
    count_rounds
      "int32 s[1] @ 0;\nint32 x[256] @ 0;\nfor (i = 0; i < 100; i++) { s += x[i]; }"
  in
  let r16 =
    count_rounds
      "int16 s[1] @ 0;\nint16 x[256] @ 0;\nfor (i = 0; i < 100; i++) { s += x[i]; }"
  in
  check_int "int32 rounds" 2 r32;
  check_int "int16 rounds" 3 r16

let test_neighbours_untouched () =
  (* the accumulator cell sits between two other values in its chunk; the
     whole-arena verify (used above) proves they survive, but assert the
     write-back is double-spliced *)
  let o = Driver.simdize_exn Driver.default (parse dot) in
  let last = List.nth o.Driver.prog.Vir_prog.epilogues
      (List.length o.Driver.prog.Vir_prog.epilogues - 1) in
  let splices = Vir_expr.count_nodes (function Vir_expr.Splice _ -> true | _ -> false) last in
  check_bool "two splices in write-back" true (splices >= 2)

let test_reduction_speedup () =
  let program = parse dot in
  let sample, opd, speedup = Simd.measure program in
  check_bool "beats scalar" true (speedup > 1.5);
  check_bool "LB below" true (Lb.opd sample.Measure.lb <= opd +. 1e-9)

let suite =
  [
    ( "reduce",
      [
        Alcotest.test_case "parse all forms" `Quick test_parse_forms;
        Alcotest.test_case "round trip" `Quick test_roundtrip;
        Alcotest.test_case "acc aliasing rejected" `Quick test_acc_cannot_be_loaded;
        Alcotest.test_case "identities" `Quick test_identities;
        Alcotest.test_case "scalar semantics" `Quick test_scalar_reduction_value;
        Alcotest.test_case "all configs verify" `Quick test_all_configs;
        Alcotest.test_case "all operators x widths" `Quick test_all_operators_widths;
        Alcotest.test_case "trip remainders" `Quick test_trip_remainders;
        Alcotest.test_case "runtime align+trip" `Quick test_runtime_everything;
        Alcotest.test_case "mixed store+reduction" `Quick test_mixed_store_and_reduction;
        Alcotest.test_case "horizontal rounds" `Quick test_horizontal_rounds;
        Alcotest.test_case "write-back splices" `Quick test_neighbours_untouched;
        Alcotest.test_case "speedup" `Quick test_reduction_speedup;
      ] );
  ]
