(* Strided-load (gather) extension tests: the paper's "non-unit stride
   accesses" future-work item. Parsing, legality, the pack-tree lowering,
   chunk-reuse properties, and differential correctness across the
   configuration space. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string

let deinterleave =
  "int32 re[256] @ 0;\nint32 im[256] @ 4;\nint32 x[600] @ 0;\n\
   for (i = 0; i < 200; i++) { re[i] = x[2*i]; im[i+1] = x[2*i+1]; }"

(* --- front end ---------------------------------------------------------- *)

let test_parse_strides () =
  let p = parse deinterleave in
  let strides =
    List.concat_map
      (fun (s : Ast.stmt) ->
        List.map (fun r -> r.Ast.ref_stride) (Ast.expr_loads s.Ast.rhs))
      p.Ast.loop.Ast.body
  in
  Alcotest.(check (list int)) "strides" [ 2; 2 ] strides;
  (* round trip *)
  check_bool "round trip" true (Ast.equal_program p (parse (Pp.program_to_string p)))

let test_unsupported_stride_rejected () =
  match
    Parse.program_of_string_result
      "int32 y[64];\nint32 x[256];\nfor (i = 0; i < 32; i++) { y[i] = x[3*i]; }"
  with
  | Error m ->
    check_bool "mentions stride" true
      (let sub = "unsupported stride" in
       let n = String.length sub in
       let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
       go 0)
  | Ok _ -> Alcotest.fail "stride 3 must be rejected"

let test_strided_store_rejected () =
  match
    Analysis.check ~machine
      (parse "int32 y[256];\nint32 x[64];\nfor (i = 0; i < 32; i++) { y[2*i] = x[i]; }")
  with
  | Error (Analysis.Store_conflict _) -> ()
  | _ -> Alcotest.fail "strided stores must be rejected (scatter)"

let test_bounds_account_for_stride () =
  (* 4*31 + 1 = 125 > 124: out of bounds *)
  match
    Analysis.check ~machine
      (parse "int32 y[64];\nint32 x[124];\nfor (i = 0; i < 32; i++) { y[i] = x[4*i]; }")
  with
  | Error (Analysis.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "strided bounds check"

(* --- lowering structure --------------------------------------------------- *)

let test_pack_tree_shape () =
  (* aligned stride 2: per iteration 2 loads + 1 pack, no shifts *)
  let o =
    Driver.simdize_exn Driver.default
      (parse
         "int32 y[256] @ 0;\nint32 x[600] @ 0;\n\
          for (i = 0; i < 200; i++) { y[i] = x[2*i]; }")
  in
  let c = Vir_prog.body_counts o.Driver.prog in
  check_int "2 loads" 2 c.Vir_prog.loads;
  check_int "1 pack" 1 c.Vir_prog.packs;
  check_int "no shifts" 0 c.Vir_prog.shifts;
  (* misaligned stride 4: 4 windows (2 shifts each... 4 shifts) + 3 packs;
     loads shared across windows and carried by PC *)
  let o4 =
    Driver.simdize_exn
      { Driver.default with Driver.reuse = Driver.Predictive_commoning }
      (parse
         "int32 y[256] @ 0;\nint32 x[900] @ 4;\n\
          for (i = 0; i < 200; i++) { y[i] = x[4*i+1]; }")
  in
  let c4 = Vir_prog.body_counts o4.Driver.prog in
  check_int "3 packs" 3 c4.Vir_prog.packs;
  check_int "4 window shifts" 4 c4.Vir_prog.shifts;
  check_bool "<= 4 fresh loads with reuse" true (c4.Vir_prog.loads <= 4)

let test_pack_semantics () =
  let v1 = Vec.of_lanes ~vector_len:16 ~elem:4 [ 0L; 1L; 2L; 3L ] in
  let v2 = Vec.of_lanes ~vector_len:16 ~elem:4 [ 4L; 5L; 6L; 7L ] in
  Alcotest.(check (list int64)) "evens of int32 concat" [ 0L; 2L; 4L; 6L ]
    (Vec.to_lanes (Vec.pack_even ~elem:4 v1 v2) ~elem:4);
  let w1 = Vec.of_lanes ~vector_len:16 ~elem:2 (List.init 8 Int64.of_int) in
  let w2 =
    Vec.of_lanes ~vector_len:16 ~elem:2 (List.init 8 (fun k -> Int64.of_int (8 + k)))
  in
  Alcotest.(check (list int64)) "evens of int16 concat"
    [ 0L; 2L; 4L; 6L; 8L; 10L; 12L; 14L ]
    (Vec.to_lanes (Vec.pack_even ~elem:2 w1 w2) ~elem:2)

let test_chunk_reuse () =
  (* stride 2 with PC: each chunk of x loaded exactly once in steady state *)
  let program =
    parse
      "int32 y[256] @ 8;\nint32 x[600] @ 4;\n\
       for (i = 0; i < 200; i++) { y[i+2] = x[2*i+1]; }"
  in
  let config = { Driver.default with Driver.reuse = Driver.Predictive_commoning } in
  let o = Driver.simdize_exn config program in
  let setup = Sim_run.prepare ~machine program in
  let r = Sim_run.run_simd ~tracing:true setup o.Driver.prog in
  let steady =
    List.filter
      (fun (t : Exec.trace_entry) -> t.Exec.segment = `Steady && t.Exec.array = "x")
      r.Sim_run.trace
  in
  let addrs = List.map (fun (t : Exec.trace_entry) -> t.Exec.effective_addr) steady in
  check_bool "each chunk loaded once" true
    (List.length addrs = List.length (Util.dedup addrs));
  (* stride 2 consumes 2 chunks per block of 4 outputs *)
  check_int "2 loads per iteration"
    (2 * r.Sim_run.counts.Exec.steady_iterations)
    (List.length addrs)

(* --- differential ---------------------------------------------------------- *)

let verify_or_fail ~config ?trip program label =
  match Measure.verify ~config ?trip program with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" label m

let test_differential_matrix () =
  List.iteri
    (fun k src ->
      let program = parse src in
      List.iter
        (fun policy ->
          List.iter
            (fun reuse ->
              let config = { Driver.default with Driver.policy; reuse } in
              verify_or_fail ~config program
                (Printf.sprintf "case %d %s/%s" k (Policy.name policy)
                   (Driver.reuse_name reuse)))
            [ Driver.No_reuse; Driver.Predictive_commoning;
              Driver.Software_pipelining ])
        Policy.all)
    [
      deinterleave;
      (* strided feeding a misaligned store, mixed with stride-1 *)
      "int32 y[256] @ 8;\nint32 x[900] @ 4;\nint32 z[256] @ 12;\n\
       for (i = 0; i < 200; i++) { y[i+2] = x[4*i+3] + z[i+1]; }";
      (* stride 2 over 16-bit data *)
      "int16 y[256] @ 2;\nint16 x[600] @ 6;\n\
       for (i = 0; i < 200; i++) { y[i+1] = x[2*i+1] + 5; }";
      (* stride 4 over 8-bit data (B = 16) *)
      "int8 y[256] @ 3;\nint8 x[900] @ 1;\n\
       for (i = 0; i < 200; i++) { y[i+1] = x[4*i+2]; }";
      (* reduction over a strided load *)
      "int32 s[1] @ 4;\nint32 x[600] @ 4;\n\
       for (i = 0; i < 200; i++) { s += x[2*i+1]; }";
    ]

let test_runtime_alignment_and_trip () =
  let src =
    "int32 y[1200] @ ?;\nint32 x[2400] @ ?;\nparam n;\n\
     for (i = 0; i < n; i++) { y[i+1] = x[2*i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  List.iter
    (fun seed ->
      List.iter
        (fun trip ->
          let setup = Sim_run.prepare ~seed ~machine ~trip program in
          match Sim_run.verify setup o.Driver.prog with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "seed %d trip %d: %s" seed trip
              (Format.asprintf "%a" Sim_run.pp_mismatch m))
        [ 5; 13; 50; 99; 100; 997 ])
    [ 1; 2; 3; 4; 5 ]

let test_trip_remainders_and_unroll () =
  List.iter
    (fun trip ->
      List.iter
        (fun unroll ->
          let src =
            Printf.sprintf
              "int32 y[256] @ 12;\nint32 x[600] @ 8;\n\
               for (i = 0; i < %d; i++) { y[i+3] = x[2*i+1]; }"
              trip
          in
          verify_or_fail
            ~config:{ Driver.default with Driver.unroll }
            (parse src)
            (Printf.sprintf "trip %d unroll %d" trip unroll))
        [ 1; 2; 4 ])
    [ 13; 14; 15; 16; 97; 98; 99; 100 ]

let test_peeling_refuses_strides () =
  let a = Analysis.check_exn ~machine (parse deinterleave) in
  check_bool "peeling inapplicable" true (Peel.check a = Peel.Mixed_alignments)

let suite =
  [
    ( "strided",
      [
        Alcotest.test_case "parse strides" `Quick test_parse_strides;
        Alcotest.test_case "unsupported stride rejected" `Quick
          test_unsupported_stride_rejected;
        Alcotest.test_case "strided store rejected" `Quick test_strided_store_rejected;
        Alcotest.test_case "strided bounds" `Quick test_bounds_account_for_stride;
        Alcotest.test_case "pack tree shape" `Quick test_pack_tree_shape;
        Alcotest.test_case "pack semantics" `Quick test_pack_semantics;
        Alcotest.test_case "chunk reuse" `Quick test_chunk_reuse;
        Alcotest.test_case "differential matrix" `Quick test_differential_matrix;
        Alcotest.test_case "runtime align+trip" `Quick test_runtime_alignment_and_trip;
        Alcotest.test_case "trip remainders x unroll" `Quick
          test_trip_remainders_and_unroll;
        Alcotest.test_case "peeling refuses strides" `Quick test_peeling_refuses_strides;
      ] );
  ]
