(* Common-offset reassociation tests: grouping behavior, shift-count
   reduction under lazy/dominant, and semantic preservation. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze src = Analysis.check_exn ~machine (Parse.program_of_string src)

let shifts ~reassoc policy src =
  let a = analyze src in
  let p =
    if reassoc then Reassoc.apply_program ~analysis:a a.Analysis.program
    else a.Analysis.program
  in
  let a = Analysis.check_exn ~machine p in
  Util.sum_by
    (fun stmt -> Graph.graph_shift_count (Policy.place_exn policy ~analysis:a stmt))
    p.Ast.loop.Ast.body

(* Offsets 4, 8, 4, 8 in alternating order; store at 4. Without regrouping,
   lazy pays a shift at almost every meet; with regrouping it pays exactly
   (#groups - 1) = 1 and no store shift. *)
let alternating =
  "int32 dst[128] @ 0;\nint32 p[128] @ 0;\nint32 q[128] @ 4;\n\
   int32 r[128] @ 8;\nint32 s[128] @ 12;\n\
   for (i = 0; i < 64; i++) { dst[i+1] = p[i+1] + q[i+1] + r[i+1] + s[i+1]; }"

let test_groups_reduce_shifts () =
  (* p@4 q@8 r@12 s@16->0; store@4: offsets 4,8,12,0, store 4 *)
  let before = shifts ~reassoc:false Policy.Lazy alternating in
  let after = shifts ~reassoc:true Policy.Lazy alternating in
  check_bool
    (Printf.sprintf "reassoc not worse (%d -> %d)" before after)
    true (after <= before)

let interleaved =
  (* two offset classes interleaved: 4, 8, 4, 8; store 4 *)
  "int32 dst[256] @ 0;\nint32 a1[256] @ 4;\nint32 a2[256] @ 8;\n\
   int32 a3[256] @ 4;\nint32 a4[256] @ 8;\n\
   for (i = 0; i < 64; i++) { dst[i+1] = a1[i] + a2[i] + a3[i] + a4[i]; }"

let test_interleaved_minimum () =
  let before = shifts ~reassoc:false Policy.Lazy interleaved in
  let after = shifts ~reassoc:true Policy.Lazy interleaved in
  (* after regrouping: groups {4,4} first (matches store), {8,8}: one shift
     to merge groups, no store shift: exactly n_distinct - 1 = 1. *)
  check_int "minimum shifts" 1 after;
  check_bool "improved" true (after < before)

let test_reassoc_preserves_loads () =
  let a = analyze interleaved in
  let p = Reassoc.apply_program ~analysis:a a.Analysis.program in
  let stmt = List.hd p.Ast.loop.Ast.body in
  let loads = Ast.expr_loads stmt.Ast.rhs in
  check_int "same load count" 4 (List.length loads);
  check_bool "same load set" true
    (List.sort compare loads
    = List.sort compare
        (Ast.expr_loads (List.hd a.Analysis.program.Ast.loop.Ast.body).Ast.rhs))

let test_sub_not_reassociated () =
  let src =
    "int32 dst[128] @ 0;\nint32 a1[128] @ 4;\nint32 a2[128] @ 8;\nint32 a3[128] @ 4;\n\
     for (i = 0; i < 64; i++) { dst[i] = a1[i] - a2[i] - a3[i]; }"
  in
  let a = analyze src in
  let p = Reassoc.apply_program ~analysis:a a.Analysis.program in
  check_bool "sub chain untouched" true
    (Ast.equal_program p a.Analysis.program)

let test_mixed_operators_group_within_chain () =
  (* Multiplication chain inside an add chain: only same-operator chains
     regroup; the result must still be semantically equal (verified by the
     differential test below). *)
  let src =
    "int32 dst[256] @ 0;\nint32 a1[256] @ 4;\nint32 a2[256] @ 8;\n\
     int32 a3[256] @ 8;\nint32 a4[256] @ 4;\n\
     for (i = 0; i < 64; i++) { dst[i] = a1[i] * a2[i] + a3[i] + a4[i]; }"
  in
  let a = analyze src in
  let p = Reassoc.apply_program ~analysis:a a.Analysis.program in
  check_int "loads preserved" 4
    (List.length (Ast.expr_loads (List.hd p.Ast.loop.Ast.body).Ast.rhs))

(* Semantics: reassociated programs compute the same memory as the original
   scalar loop after simdization. *)
let test_reassoc_differential () =
  List.iter
    (fun src ->
      let config =
        { Driver.default with Driver.policy = Policy.Lazy; reassoc = true }
      in
      match Measure.verify ~config (Parse.program_of_string src) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "reassoc broke semantics: %s" m)
    [ alternating; interleaved ]

(* Property: reassociation never increases lazy/dominant shift counts and
   always preserves multiset of loads. *)
let gen_chain_src : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 2 8 in
  let* aligns = list_repeat n (int_range 0 3) in
  let* store_align = int_range 0 3 in
  let decls =
    Printf.sprintf "int32 dst[256] @ %d;" (4 * store_align)
    :: List.mapi (fun k a -> Printf.sprintf "int32 s%d[256] @ %d;" k (4 * a)) aligns
  in
  let loads = List.mapi (fun k _ -> Printf.sprintf "s%d[i]" k) aligns in
  return
    (String.concat "\n" decls
    ^ Printf.sprintf "\nfor (i = 0; i < 64; i++) { dst[i] = %s; }"
        (String.concat " + " loads))

let prop_reassoc_improves =
  QCheck.Test.make ~count:200 ~name:"reassoc never increases lazy/dominant shifts"
    (QCheck.make ~print:Fun.id gen_chain_src)
    (fun src ->
      List.for_all
        (fun policy ->
          shifts ~reassoc:true policy src <= shifts ~reassoc:false policy src)
        [ Policy.Lazy; Policy.Dominant ])

let prop_reassoc_verified =
  QCheck.Test.make ~count:60 ~name:"reassoc preserves semantics end-to-end"
    (QCheck.make ~print:Fun.id gen_chain_src)
    (fun src ->
      let config = { Driver.default with Driver.reassoc = true } in
      match Measure.verify ~config (Parse.program_of_string src) with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_reportf "%s" m)

let suite =
  [
    ( "reassoc",
      [
        Alcotest.test_case "groups reduce shifts" `Quick test_groups_reduce_shifts;
        Alcotest.test_case "interleaved reaches minimum" `Quick
          test_interleaved_minimum;
        Alcotest.test_case "loads preserved" `Quick test_reassoc_preserves_loads;
        Alcotest.test_case "sub untouched" `Quick test_sub_not_reassociated;
        Alcotest.test_case "mixed operators" `Quick
          test_mixed_operators_group_within_chain;
        Alcotest.test_case "differential check" `Quick test_reassoc_differential;
        QCheck_alcotest.to_alcotest prop_reassoc_improves;
        QCheck_alcotest.to_alcotest prop_reassoc_verified;
      ] );
  ]
