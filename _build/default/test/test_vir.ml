(* Vector IR utilities: address algebra, runtime expressions, substitution,
   traversals, and program helpers. *)

open Simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let addr ?(wc = true) array offset =
  { Vir_addr.array; offset; scale = (if wc then 1 else 0) }

let test_addr_algebra () =
  let a = addr "x" 3 in
  check_int "shift_iter" 7 (Vir_addr.shift_iter a ~by:4).Vir_addr.offset;
  check_int "shift back" 3 (Vir_addr.shift_iter (Vir_addr.shift_iter a ~by:4) ~by:(-4)).Vir_addr.offset;
  check_int "at_iteration" 13 (Vir_addr.at_iteration a ~i:10);
  let f = Vir_addr.freeze a ~i:10 in
  check_bool "frozen" false (Vir_addr.with_counter f);
  check_int "frozen offset" 13 f.Vir_addr.offset;
  (* counter-free addresses ignore shifting and iteration *)
  let cf = addr ~wc:false "x" 5 in
  check_int "no-counter shift" 5 (Vir_addr.shift_iter cf ~by:4).Vir_addr.offset;
  check_int "no-counter at" 5 (Vir_addr.at_iteration cf ~i:10)

let test_addr_pp () =
  Alcotest.(check string) "pp +" "&x[i+3]" (Vir_addr.to_string (addr "x" 3));
  Alcotest.(check string) "pp 0" "&x[i]" (Vir_addr.to_string (addr "x" 0));
  Alcotest.(check string) "pp -" "&x[i-2]" (Vir_addr.to_string (addr "x" (-2)));
  Alcotest.(check string) "pp abs" "&x[7]" (Vir_addr.to_string (addr ~wc:false "x" 7))

let test_rexpr_fold () =
  let open Vir_rexpr in
  check_bool "const fold add" true (add (Const 2) (Const 3) = Const 5);
  check_bool "add 0" true (add (Const 0) Trip = Trip);
  check_bool "sub fold" true (sub (Const 7) (Const 3) = Const 4);
  check_bool "mul fold" true (mul_const (Const 3) 4 = Const 12);
  check_bool "mul 1" true (mul_const Trip 1 = Trip);
  check_bool "mod fold" true (mod_const (Const 21) 16 = Const 5);
  check_bool "mod negative" true (mod_const (Const (-4)) 16 = Const 12);
  check_bool "runtime stays" true
    (match add (Offset_of (addr "x" 0)) (Const 1) with Add _ -> true | _ -> false)

let test_expr_shift_iter () =
  let e =
    Vir_expr.Shiftpair
      ( Vir_expr.Load (addr "b" 1),
        Vir_expr.Load (addr "b" 5),
        Vir_rexpr.Const 4 )
  in
  match Vir_expr.shift_iter e ~by:4 with
  | Vir_expr.Shiftpair (Vir_expr.Load a1, Vir_expr.Load a2, _) ->
    check_int "curr shifted" 5 a1.Vir_addr.offset;
    check_int "next shifted" 9 a2.Vir_addr.offset
  | _ -> Alcotest.fail "shape"

let test_expr_shift_iter_rejects_temps () =
  Alcotest.check_raises "temps rejected"
    (Invalid_argument "Expr.shift_iter: expression contains a temporary")
    (fun () -> ignore (Vir_expr.shift_iter (Vir_expr.Temp "t") ~by:4))

let test_expr_freeze_keeps_temps () =
  let e = Vir_expr.Op (Ast.Add, Vir_expr.Temp "t", Vir_expr.Load (addr "x" 2)) in
  match Vir_expr.freeze e ~i:8 with
  | Vir_expr.Op (_, Vir_expr.Temp "t", Vir_expr.Load a) ->
    check_int "frozen" 10 a.Vir_addr.offset
  | _ -> Alcotest.fail "shape"

let test_traversals () =
  let stmts =
    [
      Vir_expr.Assign ("t", Vir_expr.Load (addr "x" 0));
      Vir_expr.Store
        ( addr "y" 0,
          Vir_expr.Op (Ast.Add, Vir_expr.Temp "t", Vir_expr.Load (addr "x" 4)) );
      Vir_expr.If
        ( Vir_rexpr.Gt (Vir_rexpr.Trip, Vir_rexpr.Const 0),
          [ Vir_expr.Store (addr "y" 4, Vir_expr.Load (addr "z" 0)) ],
          [] );
    ]
  in
  check_int "loads found" 3 (List.length (Vir_expr.loads_of_stmts stmts));
  check_int "load nodes" 3 (Vir_expr.count_nodes Vir_expr.is_load stmts);
  Alcotest.(check (list string)) "temps written" [ "t" ] (Vir_expr.temps_written stmts)

let test_prog_bounds_helpers () =
  let program =
    Parse.program_of_string
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nfor (i = 0; i < 50; i++) { a[i] = b[i+1]; }"
  in
  let o = Driver.simdize_exn Driver.default program in
  let p = o.Driver.prog in
  check_int "resolve const" (Vir_prog.resolve_upper p ~trip:50)
    (match p.Vir_prog.upper with
    | Vir_prog.B_const n -> n
    | Vir_prog.B_trip_minus k -> 50 - k);
  let exit = Vir_prog.exit_counter p ~trip:50 in
  check_bool "exit >= upper" true (exit >= Vir_prog.resolve_upper p ~trip:50);
  check_int "iterations consistent"
    ((exit - p.Vir_prog.lower) / p.Vir_prog.block)
    (Vir_prog.steady_iterations p ~trip:50)

let test_static_counts () =
  let stmts =
    [
      Vir_expr.Assign ("a", Vir_expr.Splat (Ast.Const 1L));
      Vir_expr.Assign ("b", Vir_expr.Temp "a");
      Vir_expr.Store
        ( addr "y" 0,
          Vir_expr.Splice
            ( Vir_expr.Shiftpair
                (Vir_expr.Load (addr "x" 0), Vir_expr.Temp "a", Vir_rexpr.Const 4),
              Vir_expr.Load (addr "y" 0),
              Vir_rexpr.Const 8 ) );
    ]
  in
  let c = Vir_prog.static_counts_of_stmts stmts in
  check_int "loads" 2 c.Vir_prog.loads;
  check_int "stores" 1 c.Vir_prog.stores;
  check_int "splats" 1 c.Vir_prog.splats;
  check_int "shifts" 1 c.Vir_prog.shifts;
  check_int "splices" 1 c.Vir_prog.splices;
  check_int "copies" 1 c.Vir_prog.copies

let test_prog_printing () =
  let program =
    Parse.program_of_string
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nfor (i = 0; i < 50; i++) { a[i] = b[i+1]; }"
  in
  let o = Driver.simdize_exn Driver.default program in
  let s = Vir_prog.to_string o.Driver.prog in
  List.iter
    (fun frag ->
      check_bool (Printf.sprintf "printed program mentions %S" frag) true
        (let n = String.length frag in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = frag || go (i + 1))
         in
         go 0))
    [ "prologue"; "for (i = 4;"; "vstore"; "vshiftpair"; "epilogue" ]

let suite =
  [
    ( "vir",
      [
        Alcotest.test_case "address algebra" `Quick test_addr_algebra;
        Alcotest.test_case "address printing" `Quick test_addr_pp;
        Alcotest.test_case "rexpr folding" `Quick test_rexpr_fold;
        Alcotest.test_case "expr substitution" `Quick test_expr_shift_iter;
        Alcotest.test_case "substitution rejects temps" `Quick
          test_expr_shift_iter_rejects_temps;
        Alcotest.test_case "freeze keeps temps" `Quick test_expr_freeze_keeps_temps;
        Alcotest.test_case "traversals" `Quick test_traversals;
        Alcotest.test_case "program bound helpers" `Quick test_prog_bounds_helpers;
        Alcotest.test_case "static counts" `Quick test_static_counts;
        Alcotest.test_case "program printing" `Quick test_prog_printing;
      ] );
  ]
