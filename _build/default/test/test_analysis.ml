(* Legality analysis and alignment (stream offset) computation tests. *)

open Simd

let machine = Machine.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parse.program_of_string

let analyze src = Analysis.check ~machine (parse src)

let expect_error src pred name =
  match analyze src with
  | Ok _ -> Alcotest.failf "expected %s error" name
  | Error e -> check_bool name true (pred e)

let test_offsets () =
  let a =
    Analysis.check_exn ~machine
      (parse
         "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ ?;\n\
          for (i = 0; i < 32; i++) { a[i+3] = b[i+1] + c[i+2]; }")
  in
  check_int "elem" 4 a.Analysis.elem;
  check_int "block" 4 a.Analysis.block;
  let off r = Analysis.offset_of a r in
  check_bool "a[i+3] @ 12" true (off { Ast.ref_array = "a"; ref_offset = 3; ref_stride = 1 } = Align.Known 12);
  check_bool "b[i+1] @ 8" true (off { Ast.ref_array = "b"; ref_offset = 1; ref_stride = 1 } = Align.Known 8);
  check_bool "c runtime" true (off { Ast.ref_array = "c"; ref_offset = 2; ref_stride = 1 } = Align.Runtime);
  check_bool "not all known" false a.Analysis.all_known

let test_offsets_wrap () =
  let a =
    Analysis.check_exn ~machine
      (parse "int16 a[64] @ 14;\nint16 b[64] @ 0;\nfor (i = 0; i < 32; i++) { a[i+2] = b[i]; }")
  in
  (* (14 + 2*2) mod 16 = 2 *)
  check_bool "wraps mod V" true
    (Analysis.offset_of a { Ast.ref_array = "a"; ref_offset = 2; ref_stride = 1 } = Align.Known 2);
  check_int "block 8" 8 a.Analysis.block

let test_misaligned_fraction () =
  let a =
    Analysis.check_exn ~machine
      (parse
         "int32 a[64] @ 0;\nint32 b[64] @ 0;\nint32 c[64] @ 0;\n\
          for (i = 0; i < 32; i++) { a[i+3] = b[i+1] + c[i+2]; }")
  in
  Alcotest.(check (float 1e-9)) "all 3 misaligned" 1.0 (Analysis.misaligned_fraction a);
  let a2 =
    Analysis.check_exn ~machine
      (parse
         "int32 a[64] @ 0;\nint32 b[64] @ 0;\n\
          for (i = 0; i < 32; i++) { a[i] = b[i+1]; }")
  in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Analysis.misaligned_fraction a2)

let test_mixed_widths_rejected () =
  expect_error "int32 a[64];\nint16 b[64];\nfor (i = 0; i < 8; i++) { a[i] = b[i]; }"
    (function Analysis.Mixed_element_widths _ -> true | _ -> false)
    "mixed widths"

let test_bad_alignment_rejected () =
  expect_error "int32 a[64] @ 17;\nfor (i = 0; i < 8; i++) { a[i] = 1; }"
    (function Analysis.Bad_base_alignment _ -> true | _ -> false)
    "align out of range";
  expect_error "int32 a[64] @ 2;\nfor (i = 0; i < 8; i++) { a[i] = 1; }"
    (function Analysis.Bad_base_alignment _ -> true | _ -> false)
    "not naturally aligned"

let test_negative_offset_rejected () =
  expect_error "int32 a[64];\nint32 b[64];\nfor (i = 0; i < 8; i++) { a[i] = b[i-1]; }"
    (function Analysis.Negative_offset _ -> true | _ -> false)
    "negative offset"

let test_oob_rejected () =
  expect_error "int32 a[8];\nfor (i = 0; i < 8; i++) { a[i+3] = 1; }"
    (function Analysis.Out_of_bounds _ -> true | _ -> false)
    "out of bounds"

let test_dependences_rejected () =
  expect_error
    "int32 a[64];\nint32 b[64];\n\
     for (i = 0; i < 8; i++) { a[i] = b[i]; a[i+1] = b[i+1]; }"
    (function Analysis.Store_conflict _ -> true | _ -> false)
    "double store";
  expect_error
    "int32 a[64];\nfor (i = 0; i < 8; i++) { a[i] = a[i+1]; }"
    (function Analysis.Store_conflict _ -> true | _ -> false)
    "store+load same array";
  expect_error
    "int32 a[64];\nint32 b[64];\n\
     for (i = 0; i < 8; i++) { a[i] = b[i]; b[i] = a[i+1]; }"
    (function Analysis.Store_conflict _ -> true | _ -> false)
    "cross statement"

let test_runtime_trip_ok () =
  match
    analyze
      "int32 a[4096];\nint32 b[4096];\nparam n;\n\
       for (i = 0; i < n; i++) { a[i] = b[i+1]; }"
  with
  | Ok a -> check_bool "legal" true (a.Analysis.block = 4)
  | Error e -> Alcotest.failf "unexpected: %s" (Analysis.error_to_string e)

let test_elem_widths_all_supported () =
  List.iter
    (fun (ty, block) ->
      let src =
        Printf.sprintf "%s a[128];\n%s b[128];\nfor (i = 0; i < 64; i++) { a[i] = b[i+1]; }"
          ty ty
      in
      match analyze src with
      | Ok a -> check_int (ty ^ " block") block a.Analysis.block
      | Error e -> Alcotest.failf "%s rejected: %s" ty (Analysis.error_to_string e))
    [ ("int8", 16); ("int16", 8); ("int32", 4); ("int64", 2) ]

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "stream offsets" `Quick test_offsets;
        Alcotest.test_case "offsets wrap mod V" `Quick test_offsets_wrap;
        Alcotest.test_case "misaligned fraction" `Quick test_misaligned_fraction;
        Alcotest.test_case "mixed widths rejected" `Quick test_mixed_widths_rejected;
        Alcotest.test_case "bad alignments rejected" `Quick test_bad_alignment_rejected;
        Alcotest.test_case "negative offsets rejected" `Quick
          test_negative_offset_rejected;
        Alcotest.test_case "bounds checked" `Quick test_oob_rejected;
        Alcotest.test_case "dependences rejected" `Quick test_dependences_rejected;
        Alcotest.test_case "runtime trip legal" `Quick test_runtime_trip_ok;
        Alcotest.test_case "all element widths" `Quick test_elem_widths_all_supported;
      ] );
  ]
