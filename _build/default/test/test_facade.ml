(* The public `Simd` facade: one-call entry points a downstream user sees
   first. *)

open Simd

let check_bool = Alcotest.(check bool)

let fig1 =
  "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_parse () =
  (match Simd.parse fig1 with
  | Ok p -> check_bool "3 arrays" true (List.length p.Ast.arrays = 3)
  | Error m -> Alcotest.fail m);
  match Simd.parse "int32 a[4;" with
  | Error m -> check_bool "located error" true (contains ~sub:"line 1" m)
  | Ok _ -> Alcotest.fail "should not parse"

let test_simdize_default () =
  match Simd.simdize (Simd.parse_exn fig1) with
  | Driver.Simdized o ->
    check_bool "pipelined default" true
      ((Vir_prog.body_counts o.Driver.prog).Vir_prog.copies > 0)
  | Driver.Scalar _ -> Alcotest.fail "must simdize"

let test_verify () =
  match Simd.verify (Simd.parse_exn fig1) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_emit_c_backends () =
  let program = Simd.parse_exn fig1 in
  List.iter
    (fun (backend, marker) ->
      match Simd.emit_c ~backend program with
      | Ok c -> check_bool (marker ^ " present") true (contains ~sub:marker c)
      | Error m -> Alcotest.fail m)
    [ (`Portable, "vshiftpair"); (`Altivec, "vec_perm"); (`Sse, "_mm_shuffle_epi8") ]

let test_emit_c_reports_reason () =
  (* trip below the guard: stays scalar with a reason *)
  let small =
    Simd.parse_exn
      "int32 a[32] @ 0;\nint32 b[32] @ 4;\nfor (i = 0; i < 8; i++) { a[i] = b[i+1]; }"
  in
  match Simd.emit_c small with
  | Error m -> check_bool "mentions trip" true (contains ~sub:"trip" m)
  | Ok _ -> Alcotest.fail "tiny loop must stay scalar"

let test_measure () =
  let _, opd, speedup = Simd.measure (Simd.parse_exn fig1) in
  check_bool "opd sane" true (opd > 1.0 && opd < 12.0);
  check_bool "speedup sane" true (speedup > 1.0 && speedup <= 4.0)

let suite =
  [
    ( "facade",
      [
        Alcotest.test_case "parse" `Quick test_parse;
        Alcotest.test_case "simdize default" `Quick test_simdize_default;
        Alcotest.test_case "verify" `Quick test_verify;
        Alcotest.test_case "emit_c backends" `Quick test_emit_c_backends;
        Alcotest.test_case "emit_c reason" `Quick test_emit_c_reports_reason;
        Alcotest.test_case "measure" `Quick test_measure;
      ] );
  ]
