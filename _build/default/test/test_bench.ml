(* Evaluation-harness tests: the loop synthesizer's contracts, the §5.3
   lower-bound model on hand-computed cases, the OPD/speedup metrics, and
   small-scale runs of the experiment drivers asserting the paper's trends. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- synthesizer -------------------------------------------------------- *)

let test_synth_shape () =
  let spec = { Synth.default_spec with Synth.stmts = 3; loads_per_stmt = 5 } in
  let p = Synth.generate ~machine spec in
  check_int "statements" 3 (List.length p.Ast.loop.Ast.body);
  List.iter
    (fun (s : Ast.stmt) ->
      check_int "loads per stmt" 5 (List.length (Ast.expr_loads s.Ast.rhs));
      (* §5.3: references within one statement access distinct arrays *)
      let arrays = List.map (fun r -> r.Ast.ref_array) (Ast.stmt_refs s) in
      check_int "distinct arrays" (List.length arrays)
        (List.length (Util.dedup arrays)))
    p.Ast.loop.Ast.body;
  (* legal and analyzable *)
  match Analysis.check ~machine p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "synth produced illegal loop: %s" (Analysis.error_to_string e)

let test_synth_deterministic () =
  let spec = Synth.default_spec in
  check_bool "same seed, same loop" true
    (Ast.equal_program (Synth.generate ~machine spec) (Synth.generate ~machine spec));
  check_bool "different seed, different loop" false
    (Ast.equal_program
       (Synth.generate ~machine spec)
       (Synth.generate ~machine { spec with Synth.seed = spec.Synth.seed + 1 }))

let test_synth_bias () =
  (* bias 1.0: every reference shares one stream offset *)
  let p = Synth.generate ~machine { Synth.default_spec with Synth.bias = 1.0; loads_per_stmt = 8 } in
  let a = Analysis.check_exn ~machine p in
  let offsets = List.map snd a.Analysis.offsets in
  check_int "single alignment class" 1 (List.length (Util.dedup offsets));
  (* bias 0: offsets spread out (with 9 references, ≥ 2 classes whp) *)
  let p0 = Synth.generate ~machine { Synth.default_spec with Synth.bias = 0.0; loads_per_stmt = 8 } in
  let a0 = Analysis.check_exn ~machine p0 in
  check_bool "spread" true
    (List.length (Util.dedup (List.map snd a0.Analysis.offsets)) > 1)

let test_synth_reuse () =
  (* full reuse: later statements reuse earlier refs where possible *)
  let spec =
    { Synth.default_spec with Synth.stmts = 4; loads_per_stmt = 2; reuse = 1.0 }
  in
  let p = Synth.generate ~machine spec in
  let load_arrays =
    List.concat_map
      (fun (s : Ast.stmt) ->
        List.map (fun r -> r.Ast.ref_array) (Ast.expr_loads s.Ast.rhs))
      p.Ast.loop.Ast.body
  in
  check_bool "arrays shared across statements" true
    (List.length (Util.dedup load_arrays) < List.length load_arrays);
  let p0 =
    Synth.generate ~machine { spec with Synth.reuse = 0.0; seed = 7 }
  in
  let load_arrays0 =
    List.concat_map
      (fun (s : Ast.stmt) ->
        List.map (fun r -> r.Ast.ref_array) (Ast.expr_loads s.Ast.rhs))
      p0.Ast.loop.Ast.body
  in
  check_int "no sharing without reuse" (List.length load_arrays0)
    (List.length (Util.dedup load_arrays0))

let test_synth_variants () =
  let p = Synth.generate ~machine Synth.default_spec in
  let rt = Synth.hide_alignments p in
  check_bool "all unknown" true
    (List.for_all (fun d -> d.Ast.arr_align = Ast.Unknown) rt.Ast.arrays);
  let ht = Synth.hide_trip p in
  check_bool "runtime trip" true
    (match ht.Ast.loop.Ast.trip with Ast.Trip_param _ -> true | _ -> false);
  check_int "original trip recoverable" 1000 (Synth.const_trip_exn p)

(* --- LB model ----------------------------------------------------------- *)

let lb_of src policy =
  let a = Analysis.check_exn ~machine (Parse.program_of_string src) in
  (Lb.compute ~analysis:a ~policy, a)

let test_lb_fig1 () =
  (* a[i+3] = b[i+1] + c[i+2], all distinct alignments {12, 4, 8}:
     zero-shift m = 3 (all misaligned) -> (2 loads + 1 store + 3 + 1 add)/4;
     lazy: n-1 = 2 -> 6/4. SEQ = 2 + 1 + 1 = 4 opd. *)
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  let lbz, a = lb_of src Policy.Zero in
  Alcotest.(check (float 1e-9)) "zero LB" (7.0 /. 4.0) (Lb.opd lbz);
  let lbl, _ = lb_of src Policy.Lazy in
  Alcotest.(check (float 1e-9)) "lazy LB" (6.0 /. 4.0) (Lb.opd lbl);
  Alcotest.(check (float 1e-9)) "SEQ" 4.0 (Lb.seq_opd ~analysis:a)

let test_lb_s1l6_shape () =
  (* The paper's S1*L6: SEQ = 12 opd exactly; LB within [3, 4.75]. *)
  let spec = { Synth.default_spec with Synth.loads_per_stmt = 6 } in
  let p = Synth.generate ~machine spec in
  let a = Analysis.check_exn ~machine p in
  Alcotest.(check (float 1e-9)) "SEQ 12" 12.0 (Lb.seq_opd ~analysis:a);
  let lb = Lb.compute ~analysis:a ~policy:Policy.Lazy in
  check_bool "LB in range" true (Lb.opd lb >= 3.0 && Lb.opd lb <= 4.75);
  (* the naive bound is 3.000 = 12/4 (paper §5.5) *)
  check_bool "naive <= LB" true (Lb.opd lb >= 3.0)

let test_lb_distinct_chunks () =
  (* x[i] and x[i+1] on a one-element-misaligned array read the same
     chunks: one load stream, not two. *)
  let src =
    "int32 y[128] @ 0;\nint32 x[128] @ 4;\n\
     for (i = 0; i < 100; i++) { y[i] = x[i] + x[i+1]; }"
  in
  let lb, _ = lb_of src Policy.Lazy in
  check_int "one load stream" 1 lb.Lb.distinct_load_streams

let test_lb_zero_counts_runtime () =
  let src =
    "int32 y[128] @ ?;\nint32 x[128] @ ?;\n\
     for (i = 0; i < 100; i++) { y[i] = x[i]; }"
  in
  let lb, _ = lb_of src Policy.Zero in
  (* both streams runtime: both must be counted as shifted *)
  check_int "runtime streams shift" 2 lb.Lb.min_shifts

(* --- measurement --------------------------------------------------------- *)

let test_measure_lb_below_actual () =
  let spec = { Synth.default_spec with Synth.loads_per_stmt = 4 } in
  let p = Synth.generate ~machine spec in
  List.iter
    (fun policy ->
      let config = { Driver.default with Driver.policy } in
      let s = Measure.run ~config p in
      check_bool
        (Policy.name policy ^ ": LB <= measured")
        true
        (Lb.opd s.Measure.lb <= Measure.opd s +. 1e-9);
      check_bool
        (Policy.name policy ^ ": speedup <= LB speedup")
        true
        (Measure.speedup s <= Measure.lb_speedup s +. 1e-9))
    Policy.all

let test_measure_speedup_reasonable () =
  let p = Synth.generate ~machine { Synth.default_spec with Synth.loads_per_stmt = 6 } in
  let s = Measure.run ~config:Driver.default p in
  let sp = Measure.speedup s in
  check_bool "1 < speedup <= 4" true (sp > 1.0 && sp <= 4.0)

let test_weights () =
  let p = Synth.generate ~machine Synth.default_spec in
  let s = Measure.run ~config:Driver.default p in
  let base = Measure.total_simd_ops s in
  let heavy =
    Measure.total_simd_ops
      ~weights:{ Measure.default_weights with Measure.copy = 1.0 }
      s
  in
  check_bool "copies charged" true (heavy >= base)

(* --- experiment drivers (small n, trend assertions) ---------------------- *)

let test_fig11_trends () =
  let f =
    Suite.opd_figure ~machine ~spec:Synth.default_spec ~count:6 ~reassoc:false
  in
  Alcotest.(check (float 1e-9)) "SEQ = 12" 12.0 f.Suite.seq_opd;
  let get name =
    (List.find (fun (r : Suite.opd_row) -> r.Suite.name = name) f.Suite.rows)
      .Suite.total_opd
  in
  (* reuse beats no-reuse for every policy; all simdized beat SEQ *)
  List.iter
    (fun p ->
      let u = String.uppercase_ascii p in
      check_bool (p ^ " reuse helps") true (get (u ^ "-sp") <= get (u ^ "-plain"));
      check_bool (p ^ " beats scalar") true (get (u ^ "-sp") < f.Suite.seq_opd))
    [ "zero"; "eager"; "lazy"; "dominant" ];
  (* zero-shift with reuse is the worst of the four policies with reuse *)
  check_bool "zero worst with reuse" true
    (get "ZERO-sp" >= get "LAZY-sp" && get "ZERO-sp" >= get "DOMINANT-sp")

let test_fig12_reassoc_reduces_shift_overhead () =
  let off = Suite.opd_figure ~machine ~spec:Synth.default_spec ~count:6 ~reassoc:false in
  let on = Suite.opd_figure ~machine ~spec:Synth.default_spec ~count:6 ~reassoc:true in
  let shift_of (f : Suite.opd_figure) name =
    (List.find (fun (r : Suite.opd_row) -> r.Suite.name = name) f.Suite.rows)
      .Suite.shift_overhead
  in
  List.iter
    (fun name ->
      check_bool (name ^ " shift overhead not increased") true
        (shift_of on name <= shift_of off name +. 1e-9))
    [ "LAZY-sp"; "DOMINANT-sp"; "LAZY-pc"; "DOMINANT-pc" ]

let test_table_trends () =
  let t =
    Suite.speedup_table ~machine ~elem:Ast.I32 ~shapes:[ (1, 2); (4, 8) ] ~count:4 ()
  in
  (match t.Suite.rows with
  | [ small; large ] ->
    check_bool "speedup grows with loop size" true
      (large.Suite.ct_actual > small.Suite.ct_actual);
    List.iter
      (fun (r : Suite.speedup_row) ->
        check_bool (r.Suite.label ^ " ct >= rt") true
          (r.Suite.ct_actual >= r.Suite.rt_actual -. 0.15);
        check_bool (r.Suite.label ^ " actual <= LB") true
          (r.Suite.ct_actual <= r.Suite.ct_lb +. 1e-9))
      t.Suite.rows
  | _ -> Alcotest.fail "rows");
  (* shorts roughly double ints *)
  let t16 =
    Suite.speedup_table ~machine ~elem:Ast.I16 ~shapes:[ (4, 8) ] ~count:4 ()
  in
  let s32 = (List.nth t.Suite.rows 1).Suite.ct_actual in
  let s16 = (List.hd t16.Suite.rows).Suite.ct_actual in
  check_bool "16-bit gains more" true (s16 > s32 *. 1.3)

let test_coverage_small () =
  let r = Suite.coverage ~machine ~seed:11 ~loops:12 () in
  check_int "all verified" r.Suite.attempted r.Suite.verified;
  check_int "36 variants" 36 r.Suite.attempted

let suite =
  [
    ( "bench",
      [
        Alcotest.test_case "synth shape" `Quick test_synth_shape;
        Alcotest.test_case "synth deterministic" `Quick test_synth_deterministic;
        Alcotest.test_case "synth bias" `Quick test_synth_bias;
        Alcotest.test_case "synth reuse" `Quick test_synth_reuse;
        Alcotest.test_case "synth variants" `Quick test_synth_variants;
        Alcotest.test_case "LB fig1 by hand" `Quick test_lb_fig1;
        Alcotest.test_case "LB S1L6 shape" `Quick test_lb_s1l6_shape;
        Alcotest.test_case "LB distinct chunks" `Quick test_lb_distinct_chunks;
        Alcotest.test_case "LB runtime zero" `Quick test_lb_zero_counts_runtime;
        Alcotest.test_case "LB below measured" `Quick test_measure_lb_below_actual;
        Alcotest.test_case "speedup in range" `Quick test_measure_speedup_reasonable;
        Alcotest.test_case "weights" `Quick test_weights;
        Alcotest.test_case "fig11 trends" `Slow test_fig11_trends;
        Alcotest.test_case "fig12 reassoc trend" `Slow test_fig12_reassoc_reduces_shift_overhead;
        Alcotest.test_case "table trends" `Slow test_table_trends;
        Alcotest.test_case "coverage small" `Slow test_coverage_small;
      ] );
  ]
