(* Differential correctness: the simdized execution must produce memory
   byte-identical to the scalar interpreter, across the full configuration
   space — policies × reuse strategies × optimizations × element widths ×
   vector lengths × compile-time/runtime alignments and trip counts × edge
   trip values. This is the §5.4 coverage methodology as a property. *)

open Simd

let check_bool = Alcotest.(check bool)
let parse = Parse.program_of_string

let verify_or_fail ~config ?trip ?(seed = 0x5EED) program label =
  match Measure.verify ~config ~setup_seed:seed ?trip program with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" label m

let fig1_src =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"

(* --- exhaustive over the configuration lattice on a fixed loop -------- *)

let test_fig1_all_configs () =
  let program = parse fig1_src in
  List.iter
    (fun policy ->
      List.iter
        (fun reuse ->
          List.iter
            (fun memnorm ->
              List.iter
                (fun reassoc ->
                  let config =
                    { Driver.default with Driver.policy; reuse; memnorm; reassoc }
                  in
                  verify_or_fail ~config program
                    (Printf.sprintf "%s/%s/memnorm=%b/reassoc=%b"
                       (Policy.name policy) (Driver.reuse_name reuse) memnorm
                       reassoc))
                [ false; true ])
            [ false; true ])
        [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ])
    Policy.all

(* --- every store alignment × trip remainder --------------------------- *)

let test_all_store_alignments_and_remainders () =
  (* store offset o ∈ {0,4,8,12} (via index offset), trip ≡ r (mod B) *)
  List.iter
    (fun c ->
      List.iter
        (fun trip ->
          let src =
            Printf.sprintf
              "int32 a[128] @ 0;\nint32 b[128] @ 4;\n\
               for (i = 0; i < %d; i++) { a[i+%d] = b[i+1]; }"
              trip c
          in
          verify_or_fail ~config:Driver.default (parse src)
            (Printf.sprintf "store+%d trip %d" c trip))
        [ 97; 98; 99; 100 ])
    [ 0; 1; 2; 3 ]

(* --- trip edge cases around the guard --------------------------------- *)

let test_trip_edges () =
  List.iter
    (fun trip ->
      let src =
        Printf.sprintf
          "int32 a[64] @ 0;\nint32 b[64] @ 8;\n\
           for (i = 0; i < %d; i++) { a[i+3] = b[i+1]; }"
          trip
      in
      match Driver.simdize Driver.default (parse src) with
      | Driver.Simdized o ->
        let setup = Sim_run.prepare ~machine:Machine.default (parse src) in
        (match Sim_run.verify setup o.Driver.prog with
        | Ok () -> ()
        | Error m ->
          Alcotest.failf "trip %d: %s" trip (Format.asprintf "%a" Sim_run.pp_mismatch m))
      | Driver.Scalar _ -> check_bool "small trips stay scalar" true (trip <= 12))
    [ 1; 2; 11; 12; 13; 14; 15; 16; 17; 20; 31; 32; 33 ]

(* --- runtime trip: guard fallback and simdized path on one program ----- *)

let test_runtime_trip_guard_boundary () =
  let src =
    "int32 a[256] @ 4;\nint32 b[256] @ 8;\nparam n;\n\
     for (i = 0; i < n; i++) { a[i+2] = b[i+1]; }"
  in
  let program = parse src in
  let o = Driver.simdize_exn Driver.default program in
  List.iter
    (fun trip ->
      let setup = Sim_run.prepare ~machine:Machine.default ~trip program in
      let r = Sim_run.run_simd setup o.Driver.prog in
      check_bool
        (Printf.sprintf "trip %d fallback decision" trip)
        (trip <= 12)
        (r.Sim_run.fallback_counts <> None);
      match Sim_run.verify setup o.Driver.prog with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "runtime trip %d: %s" trip
          (Format.asprintf "%a" Sim_run.pp_mismatch m))
    [ 1; 5; 12; 13; 25; 96; 100; 200 ]

(* --- other vector lengths --------------------------------------------- *)

let test_vector_lengths () =
  List.iter
    (fun vl ->
      let machine = Machine.create ~vector_len:vl in
      let d = 4 in
      List.iter
        (fun (salign, lalign) ->
          let src =
            Printf.sprintf
              "int32 a[128] @ %d;\nint32 b[128] @ %d;\n\
               for (i = 0; i < 100; i++) { a[i+1] = b[i+2]; }"
              salign lalign
          in
          let config = { Driver.default with Driver.machine } in
          verify_or_fail ~config (parse src)
            (Printf.sprintf "V=%d s@%d l@%d" vl salign lalign))
        [ (0, d); (d, 0); (d, vl - d) ])
    [ 8; 32; 64 ]

(* --- qcheck: random loops across the whole space ---------------------- *)

let spec_gen : Synth.spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* stmts = int_range 1 4 in
  let* loads_per_stmt = int_range 1 8 in
  let* trip = int_range 13 300 in
  let* elem = oneofl [ Ast.I8; Ast.I16; Ast.I32; Ast.I64 ] in
  let* bias = float_bound_inclusive 1.0 in
  let* reuse = float_bound_inclusive 1.0 in
  let* seed = int_range 0 1_000_000 in
  let* stride_prob = oneofl [ 0.0; 0.0; 0.3 ] in
  let* reduce_prob = oneofl [ 0.0; 0.0; 0.3 ] in
  return
    { Synth.stmts; loads_per_stmt; trip; elem; bias; reuse; stride_prob;
      reduce_prob; seed }

let config_gen : Driver.config QCheck.Gen.t =
  let open QCheck.Gen in
  let* policy = oneofl Policy.all in
  let* reuse =
    oneofl
      [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ]
  in
  let* memnorm = bool in
  let* reassoc = bool in
  let* cse = bool in
  let* hoist = bool in
  let* specialize = bool in
  let* unroll = oneofl [ 1; 1; 2; 4 ] in
  return
    {
      Driver.default with
      Driver.policy;
      reuse;
      memnorm;
      reassoc;
      cse;
      hoist_splats = hoist;
      unroll;
      specialize_epilogue = specialize;
    }

let print_case (spec, config, variant) =
  Format.asprintf
    "%s / %s-%s memnorm=%b reassoc=%b cse=%b hoist=%b spec=%b unroll=%d / %s"
    (Synth.show_spec spec)
    (Policy.name config.Driver.policy)
    (Driver.reuse_name config.Driver.reuse)
    config.Driver.memnorm config.Driver.reassoc config.Driver.cse
    config.Driver.hoist_splats config.Driver.specialize_epilogue
    config.Driver.unroll variant

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"random loops verify under random configs"
    (QCheck.make ~print:print_case
       QCheck.Gen.(
         triple spec_gen config_gen
           (oneofl [ "compile-time"; "runtime-align"; "runtime-trip" ])))
    (fun (spec, config, variant) ->
      let program = Synth.generate ~machine:Machine.default spec in
      let program, trip =
        match variant with
        | "compile-time" -> (program, None)
        | "runtime-align" -> (Synth.hide_alignments program, None)
        | _ -> (Synth.hide_trip program, Some spec.Synth.trip)
      in
      match Measure.verify ~config ?trip ~setup_seed:spec.Synth.seed program with
      | Ok () -> true
      | Error m when String.length m >= 10 && String.sub m 0 10 = "not simdiz" ->
        (* the ub > 3B guard legitimately keeps short loops scalar
           (B = 16 for int8, so trips up to 48 may be refused) *)
        true
      | Error m -> QCheck.Test.fail_reportf "%s" m)

(* --- never load the same data twice (per static access, §1) ----------- *)

let steady_site_loads prog setup =
  let r = Sim_run.run_simd ~tracing:true setup prog in
  List.filter (fun (t : Exec.trace_entry) -> t.Exec.segment = `Steady) r.Sim_run.trace

let test_never_load_twice_sp () =
  (* Under software pipelining, each static load site touches each aligned
     chunk at most once during the steady state. *)
  List.iter
    (fun seed ->
      let spec = { Synth.default_spec with Synth.seed; stmts = 2; loads_per_stmt = 4 } in
      let program = Synth.generate ~machine:Machine.default spec in
      let config =
        { Driver.default with Driver.reuse = Driver.Software_pipelining }
      in
      let o = Driver.simdize_exn config program in
      let setup = Sim_run.prepare ~machine:Machine.default program in
      let loads = steady_site_loads o.Driver.prog setup in
      let by_site = Hashtbl.create 16 in
      List.iter
        (fun (t : Exec.trace_entry) ->
          let k = (t.Exec.site, t.Exec.effective_addr) in
          Hashtbl.replace by_site k (1 + Option.value ~default:0 (Hashtbl.find_opt by_site k)))
        loads;
      Hashtbl.iter
        (fun (site, addr) n ->
          if n > 1 then
            Alcotest.failf "seed %d: site %s loaded chunk %d %d times" seed site addr n)
        by_site)
    [ 1; 2; 3; 4; 5 ]

let test_pc_loads_globally_once_fir () =
  (* With MemNorm + CSE + PC on a same-array multi-tap loop, each chunk of
     the input is loaded exactly once in steady state across ALL accesses. *)
  let src =
    "int32 y[1100] @ 0;\nint32 x[1100] @ 4;\n\
     for (i = 0; i < 1000; i++) { y[i] = x[i] + x[i+1] + x[i+2] + x[i+3]; }"
  in
  let program = parse src in
  let config =
    { Driver.default with Driver.reuse = Driver.Predictive_commoning }
  in
  let o = Driver.simdize_exn config program in
  let setup = Sim_run.prepare ~machine:Machine.default program in
  let loads =
    List.filter
      (fun (t : Exec.trace_entry) -> t.Exec.array = "x")
      (steady_site_loads o.Driver.prog setup)
  in
  let addrs = List.map (fun (t : Exec.trace_entry) -> t.Exec.effective_addr) loads in
  check_bool "globally exactly once" true
    (List.length addrs = List.length (Util.dedup addrs))

(* --- guard bytes are never clobbered ----------------------------------- *)

let test_guards_untouched () =
  (* Verified implicitly by whole-arena equality; make it explicit with a
     deliberately misaligned store near array edges. *)
  let src =
    "int32 a[16] @ 12;\nint32 b[16] @ 4;\n\
     for (i = 0; i < 13; i++) { a[i+3] = b[i+1]; }"
  in
  verify_or_fail ~config:Driver.default (parse src) "tight arrays"

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "fig1 x all configs" `Quick test_fig1_all_configs;
        Alcotest.test_case "all store alignments x remainders" `Quick
          test_all_store_alignments_and_remainders;
        Alcotest.test_case "trip edges" `Quick test_trip_edges;
        Alcotest.test_case "runtime trip guard boundary" `Quick
          test_runtime_trip_guard_boundary;
        Alcotest.test_case "vector lengths 8/32/64" `Quick test_vector_lengths;
        QCheck_alcotest.to_alcotest prop_differential;
        Alcotest.test_case "never-load-twice (SP)" `Quick test_never_load_twice_sp;
        Alcotest.test_case "PC loads FIR chunks once" `Quick
          test_pc_loads_globally_once_fir;
        Alcotest.test_case "guard bytes untouched" `Quick test_guards_untouched;
      ] );
  ]
