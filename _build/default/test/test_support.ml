(* Unit and property tests for the support library (PRNG, integer/stat
   helpers). *)

open Simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- PRNG ----------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 in
  let b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a ~bound:1000) (Prng.int b ~bound:1000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int a ~bound:1_000_000 = Prng.int b ~bound:1_000_000 then incr same
  done;
  check_bool "streams differ" true (!same < 5)

let test_prng_bounds () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Prng.int p ~bound:13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_prng_range () =
  let p = Prng.create ~seed:9 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let x = Prng.range p ~lo:10 ~hi:14 in
    check_bool "in [10,14]" true (x >= 10 && x <= 14);
    seen.(x - 10) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let test_prng_chance () =
  let p = Prng.create ~seed:11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.chance p 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check_bool "≈0.3" true (f > 0.27 && f < 0.33)

let test_prng_uniformity () =
  let p = Prng.create ~seed:13 in
  let buckets = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let k = Prng.int p ~bound:4 in
    buckets.(k) <- buckets.(k) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      check_bool "bucket ≈ 1/4" true (f > 0.23 && f < 0.27))
    buckets

let test_prng_split_independent () =
  let p = Prng.create ~seed:17 in
  let q = Prng.split p in
  (* q's stream should not equal p's continued stream *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int p ~bound:1_000_000 = Prng.int q ~bound:1_000_000 then incr same
  done;
  check_bool "independent" true (!same < 5)

let test_prng_pick_shuffle () =
  let p = Prng.create ~seed:19 in
  check_bool "pick member" true (List.mem (Prng.pick p [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  let a = Array.init 10 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 10 Fun.id) sorted

(* --- Util ----------------------------------------------------------- *)

let test_floor_div_pos_mod () =
  check_int "floor_div -1 4" (-1) (Util.floor_div (-1) 4);
  check_int "floor_div -4 4" (-1) (Util.floor_div (-4) 4);
  check_int "floor_div -5 4" (-2) (Util.floor_div (-5) 4);
  check_int "floor_div 7 4" 1 (Util.floor_div 7 4);
  check_int "pos_mod -1 16" 15 (Util.pos_mod (-1) 16);
  check_int "pos_mod 16 16" 0 (Util.pos_mod 16 16);
  check_int "pos_mod -17 16" 15 (Util.pos_mod (-17) 16)

let prop_div_mod =
  QCheck.Test.make ~count:500 ~name:"a = floor_div*b + pos_mod"
    QCheck.(pair (int_range (-10_000) 10_000) (int_range 1 64))
    (fun (a, b) ->
      let q = Util.floor_div a b and r = Util.pos_mod a b in
      (q * b) + r = a && r >= 0 && r < b)

let test_round () =
  check_int "round_down 17 16" 16 (Util.round_down 17 16);
  check_int "round_up 17 16" 32 (Util.round_up 17 16);
  check_int "round_up 16 16" 16 (Util.round_up 16 16);
  check_int "round_down -1 16" (-16) (Util.round_down (-1) 16)

let test_pow2_log2 () =
  check_bool "16 pow2" true (Util.is_pow2 16);
  check_bool "12 not pow2" false (Util.is_pow2 12);
  check_bool "0 not pow2" false (Util.is_pow2 0);
  check_int "log2 16" 4 (Util.log2 16);
  check_int "log2 1" 0 (Util.log2 1)

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Util.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9))
    "hmean" (12.0 /. 7.0)
    (Util.harmonic_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "hmean empty" (Invalid_argument "Util.harmonic_mean: empty list")
    (fun () -> ignore (Util.harmonic_mean []))

let test_group_count_dedup () =
  Alcotest.(check (list (pair int int)))
    "group_count" [ (3, 2); (1, 1); (2, 1) ]
    (Util.group_count [ 3; 1; 3; 2 ]);
  Alcotest.(check (list int)) "dedup" [ 3; 1; 2 ] (Util.dedup [ 3; 1; 3; 2; 1 ])

let test_max_by () =
  check_int "max_by" (-5) (Util.max_by abs [ 1; -5; 3 ])

let suite =
  [
    ( "support",
      [
        Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        Alcotest.test_case "prng range" `Quick test_prng_range;
        Alcotest.test_case "prng chance" `Quick test_prng_chance;
        Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
        Alcotest.test_case "prng split" `Quick test_prng_split_independent;
        Alcotest.test_case "prng pick/shuffle" `Quick test_prng_pick_shuffle;
        Alcotest.test_case "floor_div/pos_mod" `Quick test_floor_div_pos_mod;
        QCheck_alcotest.to_alcotest prop_div_mod;
        Alcotest.test_case "rounding" `Quick test_round;
        Alcotest.test_case "pow2/log2" `Quick test_pow2_log2;
        Alcotest.test_case "means" `Quick test_means;
        Alcotest.test_case "group_count/dedup" `Quick test_group_count_dedup;
        Alcotest.test_case "max_by" `Quick test_max_by;
      ] );
  ]
