(* Tests for the machine model: lane arithmetic, vector values, the three
   generic reorganization operations, and truncating memory. *)

open Simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let v16 = Machine.default

(* --- Config --------------------------------------------------------- *)

let test_config () =
  check_int "V" 16 (Machine.vector_len v16);
  check_int "B int32" 4 (Machine.blocking_factor v16 ~elem:4);
  check_int "B int16" 8 (Machine.blocking_factor v16 ~elem:2);
  check_int "trunc 0x1001" 0x1000 (Machine.truncate_addr v16 0x1001);
  check_int "trunc 0x100F" 0x1000 (Machine.truncate_addr v16 0x100F);
  check_int "trunc 0x1010" 0x1010 (Machine.truncate_addr v16 0x1010);
  check_int "align 0x100B" 0xB (Machine.alignment v16 0x100B);
  Alcotest.check_raises "V must be pow2"
    (Invalid_argument "Config.create: vector_len must be a power of two")
    (fun () -> ignore (Machine.create ~vector_len:12))

(* --- Lane arithmetic ------------------------------------------------- *)

let test_lane_canonicalize () =
  check_i64 "i8 wrap" (-128L) (Lane.canonicalize 1 128L);
  check_i64 "i8 -1" (-1L) (Lane.canonicalize 1 255L);
  check_i64 "i16 wrap" (-32768L) (Lane.canonicalize 2 32768L);
  check_i64 "i32 id" 2147483647L (Lane.canonicalize 4 2147483647L);
  check_i64 "i32 wrap" (-2147483648L) (Lane.canonicalize 4 2147483648L);
  check_i64 "i64 id" Int64.min_int (Lane.canonicalize 8 Int64.min_int)

let test_lane_ops () =
  check_i64 "add wrap i8" (-126L) (Lane.apply 1 Lane.Add 100L 30L);
  check_i64 "sub i16" (-1L) (Lane.apply 2 Lane.Sub 0L 1L);
  check_i64 "mul wrap i16" 0L (Lane.apply 2 Lane.Mul 256L 256L);
  check_i64 "min signed" (-5L) (Lane.apply 4 Lane.Min (-5L) 3L);
  check_i64 "max signed" 3L (Lane.apply 4 Lane.Max (-5L) 3L);
  check_i64 "and" 0b1000L (Lane.apply 4 Lane.And 0b1100L 0b1010L);
  check_i64 "or" 0b1110L (Lane.apply 4 Lane.Or 0b1100L 0b1010L);
  check_i64 "xor" 0b0110L (Lane.apply 4 Lane.Xor 0b1100L 0b1010L)

let prop_lane_add_wraps =
  QCheck.Test.make ~count:500 ~name:"lane add = mod-2^8D add"
    QCheck.(triple (oneofl [ 1; 2; 4 ]) int64 int64)
    (fun (d, a, b) ->
      let r = Lane.apply d Lane.Add a b in
      Lane.canonicalize d r = r
      && Int64.rem (Int64.sub (Int64.add a b) r) (Int64.shift_left 1L (8 * d)) = 0L)

let prop_lane_commutative =
  QCheck.Test.make ~count:500 ~name:"commutative ops commute"
    QCheck.(quad (oneofl [ 1; 2; 4; 8 ]) (oneofl Lane.all_binops) int64 int64)
    (fun (d, op, a, b) ->
      (not (Lane.binop_commutative op)) || Lane.apply d op a b = Lane.apply d op b a)

(* --- Vec ------------------------------------------------------------- *)

let vec_of_ints xs = Vec.of_lanes ~vector_len:16 ~elem:4 (List.map Int64.of_int xs)
let ints_of_vec v = List.map Int64.to_int (Vec.to_lanes v ~elem:4)

let test_vec_lanes_roundtrip () =
  let v = vec_of_ints [ 1; -2; 3; -4 ] in
  Alcotest.(check (list int)) "roundtrip" [ 1; -2; 3; -4 ] (ints_of_vec v)

let test_vec_splat () =
  let v = Vec.splat ~vector_len:16 ~elem:4 7L in
  Alcotest.(check (list int)) "splat" [ 7; 7; 7; 7 ] (ints_of_vec v);
  let v8 = Vec.splat ~vector_len:16 ~elem:2 (-1L) in
  check_int "8 lanes" 8 (List.length (Vec.to_lanes v8 ~elem:2))

let test_vec_shiftpair () =
  let a = vec_of_ints [ 0; 1; 2; 3 ] in
  let b = vec_of_ints [ 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "shift 0 = a" [ 0; 1; 2; 3 ]
    (ints_of_vec (Vec.shiftpair a b ~shift:0));
  Alcotest.(check (list int)) "shift 4" [ 1; 2; 3; 4 ]
    (ints_of_vec (Vec.shiftpair a b ~shift:4));
  Alcotest.(check (list int)) "shift 8" [ 2; 3; 4; 5 ]
    (ints_of_vec (Vec.shiftpair a b ~shift:8));
  Alcotest.(check (list int)) "shift 12" [ 3; 4; 5; 6 ]
    (ints_of_vec (Vec.shiftpair a b ~shift:12));
  Alcotest.(check (list int)) "shift 16 = b" [ 4; 5; 6; 7 ]
    (ints_of_vec (Vec.shiftpair a b ~shift:16));
  Alcotest.check_raises "shift 17 rejected"
    (Invalid_argument "Vec.shiftpair: shift out of range") (fun () ->
      ignore (Vec.shiftpair a b ~shift:17))

let test_vec_splice () =
  let a = vec_of_ints [ 0; 1; 2; 3 ] in
  let b = vec_of_ints [ 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "splice 0 = b" [ 4; 5; 6; 7 ]
    (ints_of_vec (Vec.splice a b ~point:0));
  Alcotest.(check (list int)) "splice 8" [ 0; 1; 6; 7 ]
    (ints_of_vec (Vec.splice a b ~point:8));
  Alcotest.(check (list int)) "splice 16 = a" [ 0; 1; 2; 3 ]
    (ints_of_vec (Vec.splice a b ~point:16))

let test_vec_binop () =
  let a = vec_of_ints [ 1; 2; 3; 4 ] in
  let b = vec_of_ints [ 10; 20; 30; 40 ] in
  Alcotest.(check (list int)) "vadd" [ 11; 22; 33; 44 ]
    (ints_of_vec (Vec.binop ~elem:4 Lane.Add a b));
  (* 2-byte lanes on the same bytes behave independently *)
  let ones16 = Vec.splat ~vector_len:16 ~elem:2 1L in
  let sums = Vec.binop ~elem:2 Lane.Add ones16 ones16 in
  Alcotest.(check (list int64)) "8-lane add"
    (List.init 8 (fun _ -> 2L))
    (Vec.to_lanes sums ~elem:2)

(* shiftpair(a,b,s1) then shifting the result against a consistently shifted
   next window equals a direct shift by s1+s2 over the concatenation — the
   algebra behind stream-shift composition. *)
let prop_shiftpair_window =
  QCheck.Test.make ~count:200 ~name:"shiftpair = 32-byte window"
    QCheck.(pair (int_range 0 16) (list_of_size (Gen.return 32) (int_range 0 255)))
    (fun (sh, bytes) ->
      let arr = Array.of_list bytes in
      let a = Vec.init ~vector_len:16 (fun i -> arr.(i)) in
      let b = Vec.init ~vector_len:16 (fun i -> arr.(16 + i)) in
      let r = Vec.shiftpair a b ~shift:sh in
      List.for_all
        (fun k -> Vec.get_byte r k = arr.(k + sh) land 0xff)
        (List.init 16 Fun.id))

let prop_splice_select =
  QCheck.Test.make ~count:200 ~name:"splice selects bytewise"
    QCheck.(int_range 0 16)
    (fun p ->
      let a = Vec.init ~vector_len:16 (fun i -> i) in
      let b = Vec.init ~vector_len:16 (fun i -> 100 + i) in
      let r = Vec.splice a b ~point:p in
      List.for_all
        (fun k -> Vec.get_byte r k = if k < p then k else 100 + k)
        (List.init 16 Fun.id))

(* --- Mem ------------------------------------------------------------- *)

let test_mem_truncating_load () =
  let mem = Mem.create v16 ~size:64 in
  for i = 0 to 63 do
    Mem.poke_scalar mem ~elem:1 i (Int64.of_int (i land 0x7f))
  done;
  (* loads at 16..31 all return the same chunk *)
  let base = Mem.load_vector mem 16 in
  for a = 17 to 31 do
    check_bool (Printf.sprintf "load %d truncates" a) true
      (Vec.equal base (Mem.load_vector mem a))
  done;
  check_bool "next chunk differs" false (Vec.equal base (Mem.load_vector mem 32))

let test_mem_truncating_store () =
  let mem = Mem.create v16 ~size:64 in
  let v = Vec.splat ~vector_len:16 ~elem:1 0x5AL in
  Mem.store_vector mem 19 v;
  (* store went to [16, 32), not [19, 35) *)
  check_i64 "byte 16 written" 0x5AL (Mem.peek_scalar mem ~elem:1 16);
  check_i64 "byte 31 written" 0x5AL (Mem.peek_scalar mem ~elem:1 31);
  check_i64 "byte 32 untouched" 0L (Mem.peek_scalar mem ~elem:1 32);
  check_i64 "byte 15 untouched" 0L (Mem.peek_scalar mem ~elem:1 15)

let test_mem_counters () =
  let mem = Mem.create v16 ~size:64 in
  ignore (Mem.load_vector mem 0);
  ignore (Mem.load_vector mem 16);
  Mem.store_vector mem 0 (Vec.zero ~vector_len:16);
  ignore (Mem.load_scalar mem ~elem:4 4);
  Mem.store_scalar mem ~elem:4 8 42L;
  let c = Mem.counters mem in
  check_int "vloads" 2 c.Mem.vector_loads;
  check_int "vstores" 1 c.Mem.vector_stores;
  check_int "sloads" 1 c.Mem.scalar_loads;
  check_int "sstores" 1 c.Mem.scalar_stores;
  Mem.reset_counters mem;
  check_int "reset" 0 (Mem.counters mem).Mem.vector_loads

let test_mem_scalar_signed () =
  let mem = Mem.create v16 ~size:64 in
  Mem.store_scalar mem ~elem:2 0 (-2L);
  check_i64 "signed roundtrip" (-2L) (Mem.load_scalar mem ~elem:2 0);
  Mem.store_scalar mem ~elem:1 8 200L;
  check_i64 "i8 wraps" (-56L) (Mem.load_scalar mem ~elem:1 8)

let test_mem_bounds () =
  let mem = Mem.create v16 ~size:32 in
  Alcotest.check_raises "oob load"
    (Invalid_argument "Mem.load_vector: address 32 (+16) out of arena [0, 32)")
    (fun () -> ignore (Mem.load_vector mem 40))

let suite =
  [
    ( "machine",
      [
        Alcotest.test_case "config" `Quick test_config;
        Alcotest.test_case "lane canonicalize" `Quick test_lane_canonicalize;
        Alcotest.test_case "lane ops" `Quick test_lane_ops;
        QCheck_alcotest.to_alcotest prop_lane_add_wraps;
        QCheck_alcotest.to_alcotest prop_lane_commutative;
        Alcotest.test_case "vec lanes roundtrip" `Quick test_vec_lanes_roundtrip;
        Alcotest.test_case "vec splat" `Quick test_vec_splat;
        Alcotest.test_case "vec shiftpair" `Quick test_vec_shiftpair;
        Alcotest.test_case "vec splice" `Quick test_vec_splice;
        Alcotest.test_case "vec binop" `Quick test_vec_binop;
        QCheck_alcotest.to_alcotest prop_shiftpair_window;
        QCheck_alcotest.to_alcotest prop_splice_select;
        Alcotest.test_case "mem truncating load" `Quick test_mem_truncating_load;
        Alcotest.test_case "mem truncating store" `Quick test_mem_truncating_store;
        Alcotest.test_case "mem counters" `Quick test_mem_counters;
        Alcotest.test_case "mem scalar signed" `Quick test_mem_scalar_signed;
        Alcotest.test_case "mem bounds" `Quick test_mem_bounds;
      ] );
  ]
