lib/sim/exec.pp.mli: Layout Ppx_deriving_runtime Prog Simd_loopir Simd_machine Simd_vir
