lib/sim/run.pp.ml: Ast Bytes Char Config Exec Format Int64 Interp Layout List Mem Printf Simd_loopir Simd_machine Simd_support Simd_vir
