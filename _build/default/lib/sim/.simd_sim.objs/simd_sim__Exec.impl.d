lib/sim/exec.pp.ml: Addr Ast Config Expr Hashtbl Lane Layout List Mem Ppx_deriving_runtime Printf Prog Rexpr Simd_loopir Simd_machine Simd_support Simd_vir Vec
