lib/sim/run.pp.mli: Ast Exec Format Interp Layout Simd_loopir Simd_machine Simd_vir
