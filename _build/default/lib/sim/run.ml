(** High-level simulation entry points: array placement, memory
    initialization, scalar and simdized execution, and the differential
    verifier used throughout the test suite and by §5.4's coverage
    experiment ("the generated binaries were simulated on a cycle-accurate
    simulator, and the results were verified"). *)

open Simd_loopir
open Simd_machine

(** A prepared execution environment: the layout and initial memory image
    are fixed once so scalar and simdized runs see identical worlds. *)
type setup = {
  program : Ast.program;
  machine : Config.t;
  layout : Layout.t;
  params : (string * int64) list;
  trip : int;
  init_image : Mem.t;  (** pristine memory; runs execute on copies *)
}

(** [prepare ?seed ?params ?trip ~machine program] — place arrays (runtime
    alignments drawn from [seed]) and fill the arena with deterministic
    noise. [trip] must be given when the trip count is a runtime parameter;
    parameters default to small deterministic values if not supplied. *)
let prepare ?(seed = 0x5EED) ?(params = []) ?trip ~machine
    (program : Ast.program) : setup =
  let prng = Simd_support.Prng.create ~seed in
  let layout = Layout.create ~machine ~prng program in
  let trip =
    match (program.Ast.loop.Ast.trip, trip) with
    | Ast.Trip_const n, None -> n
    | Ast.Trip_const n, Some t ->
      if t <> n then
        invalid_arg "Run.prepare: trip override conflicts with constant bound";
      n
    | Ast.Trip_param _, Some t -> t
    | Ast.Trip_param x, None ->
      invalid_arg (Printf.sprintf "Run.prepare: runtime trip %S needs ~trip" x)
  in
  (* Bind every declared param; unspecified ones get deterministic values.
     A param used as the trip count is bound to it. *)
  let trip_param =
    match program.Ast.loop.Ast.trip with
    | Ast.Trip_param x -> Some x
    | Ast.Trip_const _ -> None
  in
  let params =
    List.map
      (fun name ->
        match List.assoc_opt name params with
        | Some v -> (name, v)
        | None when trip_param = Some name -> (name, Int64.of_int trip)
        | None ->
          (name, Int64.of_int (1 + Simd_support.Prng.int prng ~bound:100)))
      program.Ast.params
  in
  let mem = Mem.create machine ~size:layout.Layout.arena_size in
  Mem.fill_random mem prng;
  { program; machine; layout; params; trip; init_image = mem }

(** [fresh_mem setup] — a pristine copy of the initial memory image. *)
let fresh_mem setup = Mem.copy setup.init_image

(** [run_scalar setup] — execute the original loop; returns ideal scalar
    counts and the final memory. *)
let run_scalar setup : Interp.counts * Mem.t =
  let mem = fresh_mem setup in
  let env =
    Interp.make_env ~layout:setup.layout ~params:setup.params ~trip:setup.trip ()
  in
  let counts = Interp.run ~mem ~env setup.program in
  (counts, mem)

(** Result of a simdized execution. [fallback_counts] is set when the
    [trip > 3B] guard failed and the scalar original ran instead (§4.4). *)
type simd_run = {
  counts : Exec.counts;
  fallback_counts : Interp.counts option;
  trace : Exec.trace_entry list;
  final_mem : Mem.t;
}

(** [run_simd ?tracing setup prog] — execute the simdized program, honoring
    its trip-count guard. *)
let run_simd ?(tracing = false) setup (prog : Simd_vir.Prog.t) : simd_run =
  let mem = fresh_mem setup in
  if setup.trip <= prog.Simd_vir.Prog.min_trip then begin
    let env =
      Interp.make_env ~layout:setup.layout ~params:setup.params ~trip:setup.trip
        ()
    in
    let counts = Interp.run ~mem ~env setup.program in
    {
      counts = Exec.zero_counts;
      fallback_counts = Some counts;
      trace = [];
      final_mem = mem;
    }
  end
  else begin
    let counts, trace =
      Exec.run ~mem ~layout:setup.layout ~params:setup.params ~trip:setup.trip
        ~tracing prog
    in
    { counts; fallback_counts = None; trace; final_mem = mem }
  end

(** A verification failure: the simdized execution produced different
    memory than the scalar one. *)
type mismatch = {
  byte_addr : int;
  scalar_byte : int;
  simd_byte : int;
  in_array : string option;
}

let pp_mismatch fmt m =
  Format.fprintf fmt "byte %d differs: scalar %#x vs simd %#x%s" m.byte_addr
    m.scalar_byte m.simd_byte
    (match m.in_array with
    | Some a -> Printf.sprintf " (inside array %S)" a
    | None -> " (outside all arrays — simdized code clobbered guard bytes)")

(** [verify setup prog] — differential test: run both versions on identical
    memory and require byte-for-byte equal arenas. Equality of the {e whole}
    arena (not just array regions) additionally proves the simdized code
    never clobbers guard bytes — partial stores must splice correctly. *)
let verify setup (prog : Simd_vir.Prog.t) : (unit, mismatch) result =
  let _, scalar_mem = run_scalar setup in
  let simd = run_simd setup prog in
  let size = Mem.size scalar_mem in
  let a = Mem.peek_bytes scalar_mem 0 size in
  let b = Mem.peek_bytes simd.final_mem 0 size in
  if Bytes.equal a b then Ok ()
  else begin
    let idx = ref 0 in
    while Bytes.get a !idx = Bytes.get b !idx do
      incr idx
    done;
    let in_array =
      List.find_map
        (fun (d : Ast.array_decl) ->
          let base, len =
            Layout.array_region setup.layout ~program:setup.program d.Ast.arr_name
          in
          if !idx >= base && !idx < base + len then Some d.Ast.arr_name else None)
        setup.program.Ast.arrays
    in
    Error
      {
        byte_addr = !idx;
        scalar_byte = Char.code (Bytes.get a !idx);
        simd_byte = Char.code (Bytes.get b !idx);
        in_array;
      }
  end
