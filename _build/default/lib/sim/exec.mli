(** Execution of simdized programs on the machine model — the stand-in for
    the paper's cycle-accurate simulator: truncating vector memory
    operations, dynamic operation counts by class, and per-load effective
    address tracing for the never-load-twice property. *)

open Simd_loopir
open Simd_vir

type counts = {
  vloads : int;
  vstores : int;
  vops : int;
  vsplats : int;
  vshifts : int;
  vsplices : int;
  vpacks : int;  (** strided-gather packs (extension) *)
  copies : int;  (** register copies (pipelining carries) *)
  scalar_ops : int;  (** scalar arithmetic feeding splats *)
  steady_iterations : int;
}
[@@deriving show, eq]

val zero_counts : counts

val total : counts -> int
(** Total vector-unit operations. *)

type trace_entry = {
  segment : [ `Prologue | `Steady | `Epilogue ];
  array : string;
  site : string;  (** static identity: the printed address expression *)
  effective_addr : int;
}

val run :
  mem:Simd_machine.Mem.t ->
  layout:Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  ?tracing:bool ->
  Prog.t ->
  counts * trace_entry list
(** Execute the simdized program (the caller enforces the trip guard; see
    {!Run.run_simd}). *)
