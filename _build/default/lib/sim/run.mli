(** High-level simulation: array placement, deterministic memory
    initialization, scalar and simdized execution, and the whole-arena
    differential verifier (§5.4's methodology). *)

open Simd_loopir

type setup = {
  program : Ast.program;
  machine : Simd_machine.Config.t;
  layout : Layout.t;
  params : (string * int64) list;
  trip : int;
  init_image : Simd_machine.Mem.t;  (** pristine; runs execute on copies *)
}

val prepare :
  ?seed:int ->
  ?params:(string * int64) list ->
  ?trip:int ->
  machine:Simd_machine.Config.t ->
  Ast.program ->
  setup
(** Place arrays (runtime alignments drawn from [seed]) and fill the arena
    with noise. [trip] is required for runtime trip counts; unspecified
    parameters get deterministic values (a trip-count parameter is bound to
    the trip). *)

val fresh_mem : setup -> Simd_machine.Mem.t

val run_scalar : setup -> Interp.counts * Simd_machine.Mem.t

type simd_run = {
  counts : Exec.counts;
  fallback_counts : Interp.counts option;
      (** set when the [trip > 3B] guard sent execution to the scalar
          original (§4.4) *)
  trace : Exec.trace_entry list;
  final_mem : Simd_machine.Mem.t;
}

val run_simd : ?tracing:bool -> setup -> Simd_vir.Prog.t -> simd_run

type mismatch = {
  byte_addr : int;
  scalar_byte : int;
  simd_byte : int;
  in_array : string option;
      (** [None]: the simdized code clobbered guard bytes *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val verify : setup -> Simd_vir.Prog.t -> (unit, mismatch) result
(** Run both versions on identical memory; require byte-for-byte equal
    arenas (including guard zones — partial stores must splice exactly). *)
