(** Common-offset reassociation (paper §5.5, "OffsetReassoc"): regroup
    chains of one associative-commutative operator so operands with
    identical stream offsets combine first, letting lazy/dominant placement
    reach the analytic shift minimum. *)

val flatten : Simd_loopir.Ast.binop -> Simd_loopir.Ast.expr -> Simd_loopir.Ast.expr list
val rebuild : Simd_loopir.Ast.binop -> Simd_loopir.Ast.expr list -> Simd_loopir.Ast.expr

val apply : analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Simd_loopir.Ast.stmt
val apply_program :
  analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.program -> Simd_loopir.Ast.program
