(** Stream-shift placement policies (paper §3.4): zero-shift (the only
    policy usable under runtime alignments; prior work/VAST equivalent),
    eager-shift, lazy-shift, and dominant-shift. See the implementation
    header for the full description. *)

type t = Zero | Eager | Lazy | Dominant [@@deriving show, eq, ord]

val all : t list
val name : t -> string
val of_name : string -> t option

type error = Requires_compile_time_alignment of t

val pp_error : Format.formatter -> error -> unit

val target_offset : analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Offset.t
(** The offset a statement's value stream must reach: the store alignment
    (C.2) for assignments, offset 0 for reductions. *)

val dominant_offset :
  analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Offset.t
(** Most frequent offset among loads and store; ties prefer the store
    alignment, then the smallest value. *)

val place :
  t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Graph.t, error) result
(** Build the statement's valid data reorganization graph under the
    policy. *)

val place_exn : t -> analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Graph.t
