(** Stream offsets as graph node properties (paper §3.3).

    Each node of a data reorganization graph carries a stream offset: a
    compile-time byte constant, a runtime value (identified by the memory
    reference whose i=0 address computes it, [addr & (V-1)]), or [Any] (⊥)
    for [vsplat] nodes, which satisfy any offset constraint because the same
    value occupies every register slot. *)

type t =
  | Known of int  (** compile-time byte offset in [\[0, V)] *)
  | Runtime of Simd_loopir.Ast.mem_ref
      (** runtime offset, computed from this reference's address *)
  | Any  (** ⊥: splats match every offset *)
[@@deriving show { with_path = false }, eq, ord]

let of_align (a : Simd_loopir.Align.t) ~(ref_ : Simd_loopir.Ast.mem_ref) =
  match a with
  | Simd_loopir.Align.Known k -> Known k
  | Simd_loopir.Align.Runtime -> Runtime ref_

(** [matches ~block a b] — constraint (C.3): do two operand streams provably
    reside at the same byte offset? [Any] matches everything. Two runtime
    offsets match only when provably equal: same array with index offsets
    congruent modulo the blocking factor [block] (their addresses then differ
    by a multiple of V). *)
let matches ~block a b =
  match (a, b) with
  | Any, _ | _, Any -> true
  | Known x, Known y -> x = y
  | Runtime r1, Runtime r2 ->
    r1.Simd_loopir.Ast.ref_array = r2.Simd_loopir.Ast.ref_array
    && Simd_support.Util.pos_mod
         (r1.Simd_loopir.Ast.ref_offset - r2.Simd_loopir.Ast.ref_offset)
         block
       = 0
  | Known _, Runtime _ | Runtime _, Known _ -> false

(** [merge ~block a b] — the offset of a [vop] node given two matching
    operand offsets (Eq. 4: the uniform operand offset; ⊥ absorbs). *)
let merge ~block a b =
  if not (matches ~block a b) then
    invalid_arg "Offset.merge: offsets do not match";
  match (a, b) with Any, o | o, _ -> o

let is_any = function Any -> true | _ -> false
let is_known = function Known _ -> true | _ -> false

let pp fmt = function
  | Known k -> Format.pp_print_int fmt k
  | Runtime r -> Format.fprintf fmt "rt(%s)" (Simd_loopir.Pp.mem_ref_to_string r)
  | Any -> Format.pp_print_string fmt "⊥"
