lib/dreorg/graph.pp.mli: Format Offset Ppx_deriving_runtime Simd_loopir
