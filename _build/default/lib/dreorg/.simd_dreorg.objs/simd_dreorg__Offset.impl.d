lib/dreorg/offset.pp.ml: Format Ppx_deriving_runtime Simd_loopir Simd_support
