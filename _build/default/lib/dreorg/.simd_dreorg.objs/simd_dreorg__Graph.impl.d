lib/dreorg/graph.pp.ml: Analysis Ast Format Offset Pp Ppx_deriving_runtime Simd_loopir Simd_machine
