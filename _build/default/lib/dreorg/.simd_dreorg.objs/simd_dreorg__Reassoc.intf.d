lib/dreorg/reassoc.pp.mli: Simd_loopir
