lib/dreorg/policy.pp.mli: Format Graph Offset Ppx_deriving_runtime Simd_loopir
