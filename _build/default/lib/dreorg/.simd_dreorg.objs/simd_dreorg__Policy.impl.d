lib/dreorg/policy.pp.ml: Align Analysis Ast Format Graph List Offset Option Ppx_deriving_runtime Simd_loopir Simd_support
