lib/dreorg/reassoc.pp.ml: Align Analysis Ast List Simd_loopir Simd_machine Simd_support
