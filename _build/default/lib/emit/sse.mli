(** SSE (x86) backend: explicit address truncation before the aligned
    [_mm_load_si128]/[_mm_store_si128] forms reproduces the paper's memory
    unit; runtime [vshiftpair] via SSSE3 [_mm_shuffle_epi8] on both
    operands. Requires [-mssse3]. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
val unit : Simd_vir.Prog.t -> string

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** The portable harness scaffolding over the SSE unit (compilable on
    x86-64 with SSSE3; exercised by integration tests). *)
