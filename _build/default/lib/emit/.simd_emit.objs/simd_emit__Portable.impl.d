lib/emit/portable.ml: Ast Buffer C_syntax Expr Layout List Printf Prog Simd_loopir Simd_machine Simd_support Simd_vir String
