lib/emit/altivec.mli: Simd_loopir Simd_vir
