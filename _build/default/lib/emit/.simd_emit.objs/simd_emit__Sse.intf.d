lib/emit/sse.mli: Simd_loopir Simd_vir
