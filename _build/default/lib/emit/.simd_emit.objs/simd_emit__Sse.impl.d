lib/emit/sse.ml: Ast C_syntax Fun List Portable Printf Simd_loopir Simd_machine Simd_vir String
