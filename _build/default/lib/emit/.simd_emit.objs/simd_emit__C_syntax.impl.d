lib/emit/c_syntax.ml: Addr Ast Buffer List Printf Rexpr Simd_loopir Simd_vir String
