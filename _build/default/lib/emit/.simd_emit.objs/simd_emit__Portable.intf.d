lib/emit/portable.mli: Simd_loopir Simd_vir
