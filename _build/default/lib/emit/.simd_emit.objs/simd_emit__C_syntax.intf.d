lib/emit/c_syntax.mli: Addr Ast Rexpr Simd_loopir Simd_vir
