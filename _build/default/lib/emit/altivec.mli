(** AltiVec/VMX backend: the same kernels over a prelude implementing the
    generic operations with AltiVec intrinsics per §2.2 ([vec_ld]/[vec_st],
    [vec_perm] with a [vsplat((char)sh) + iota] permute vector, [vec_sel]
    with a comparison mask, [vec_splats]). *)

val vec_ctype : Simd_loopir.Ast.elem_ty -> string
val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
val unit : Simd_vir.Prog.t -> string
