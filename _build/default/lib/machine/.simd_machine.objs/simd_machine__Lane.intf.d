lib/machine/lane.mli: Format
