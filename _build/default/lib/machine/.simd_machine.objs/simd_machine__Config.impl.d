lib/machine/config.ml: Format Simd_support
