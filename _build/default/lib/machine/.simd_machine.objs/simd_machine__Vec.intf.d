lib/machine/vec.mli: Format Lane
