lib/machine/config.mli: Format
