lib/machine/vec.ml: Bytes Char Format Int64 Lane List
