lib/machine/mem.ml: Bytes Char Config Int64 Lane Printf Simd_support Vec
