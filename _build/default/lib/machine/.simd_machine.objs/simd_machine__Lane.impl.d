lib/machine/lane.ml: Format Int64 Printf
