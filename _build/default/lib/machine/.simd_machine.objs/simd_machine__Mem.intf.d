lib/machine/mem.mli: Config Simd_support Vec
