(** Target-machine description: a SIMD unit with [V]-byte vector registers
    whose loads and stores silently truncate addresses to [V]-byte
    boundaries (AltiVec semantics; paper §1/§2.1). *)

type t

val create : vector_len:int -> t
(** [create ~vector_len] — a machine with [V = vector_len] bytes per vector
    register; must be a power of two in [\[4, 64\]]. *)

val default : t
(** The paper's machine: V = 16 bytes (AltiVec / VMX / SSE class). *)

val vector_len : t -> int

val blocking_factor : t -> elem:int -> int
(** [B = V/D] (paper Eq. 7): data of width [elem] per vector register. *)

val truncate_addr : t -> int -> int
(** The effective address of a vector memory access: low [log2 V] bits
    cleared. *)

val alignment : t -> int -> int
(** [addr mod V]: the byte offset of an address within its enclosing chunk
    — the paper's (mis)alignment of a reference. *)

val pp : Format.formatter -> t -> unit
