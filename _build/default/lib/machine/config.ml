(** Target-machine description.

    The paper targets "generic 16-byte wide SIMD units that are representative
    of most SIMD architectures currently available" whose load-store unit
    supports only [V]-byte aligned loads and stores (AltiVec semantics: the
    low bits of the address are silently ignored). We keep the vector length
    configurable so that tests can exercise 8- and 32-byte machines as well. *)

type t = {
  vector_len : int;  (** [V]: vector register length in bytes; a power of two. *)
}

let create ~vector_len =
  if not (Simd_support.Util.is_pow2 vector_len) then
    invalid_arg "Config.create: vector_len must be a power of two";
  if vector_len < 4 || vector_len > 64 then
    invalid_arg "Config.create: vector_len out of supported range [4, 64]";
  { vector_len }

(** The paper's machine: V = 16 bytes (AltiVec / VMX / SSE class). *)
let default = create ~vector_len:16

let vector_len t = t.vector_len

(** [blocking_factor t ~elem] is [B = V/D] (paper Eq. 7): the number of data
    of width [elem] packed in one vector register. *)
let blocking_factor t ~elem =
  if elem <= 0 || t.vector_len mod elem <> 0 then
    invalid_arg "Config.blocking_factor: element width must divide V";
  t.vector_len / elem

(** [truncate_addr t addr] models the memory unit: the effective address of a
    vector load or store is [addr] with its low [log2 V] bits ignored. *)
let truncate_addr t addr = addr land lnot (t.vector_len - 1)

(** [alignment t addr] is [addr mod V]: the byte offset of [addr] within its
    enclosing [V]-byte chunk. This is what the paper calls the (mis)alignment
    of a memory reference. *)
let alignment t addr = addr land (t.vector_len - 1)

let pp fmt t = Format.fprintf fmt "machine(V=%d)" t.vector_len
