(** Stream offsets (paper §3.2): the byte offset, within a [V]-byte chunk,
    of the first desired value of a memory stream — compile-time when the
    base alignment is declared, runtime otherwise. *)

type t =
  | Known of int  (** compile-time byte offset in [\[0, V)] *)
  | Runtime  (** known only at runtime ([addr & (V-1)]) *)
[@@deriving show, eq, ord]

val is_known : t -> bool
val known_exn : t -> int

val of_ref : machine:Simd_machine.Config.t -> program:Ast.program -> Ast.mem_ref -> t
(** The stream offset of a reference: [(base + offset*D) mod V], or
    [Runtime] for undeclared base alignments. *)

val concrete :
  machine:Simd_machine.Config.t -> base:int -> elem:int -> offset:int -> int
(** The realized offset once the base address is fixed (simulator side). *)

val pp : Format.formatter -> t -> unit
