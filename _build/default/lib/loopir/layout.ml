(** Placement of arrays into the simulator's memory arena.

    Each array receives a contiguous region whose base address realizes its
    declared alignment: [base ≡ k (mod V)] for [Known k], or an arbitrary
    naturally-aligned address (drawn from a PRNG) for [Unknown]. Every array
    is surrounded by at least [2V] bytes of guard padding because the
    simdized code may issue truncated vector loads that reach up to one
    vector before the first element (right-shift prologues) or past the last
    (epilogue splice loads); the guards make those accesses well-defined
    without ever being visible in results. *)

open Simd_support

type t = {
  bases : int Util.String_map.t;  (** array name → base byte address *)
  arena_size : int;
}

let base t name =
  match Util.String_map.find_opt name t.bases with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Layout.base: unknown array %S" name)

(** [addr t ~elem ~name ~index] — byte address of element [index]. *)
let addr t ~elem ~name ~index = base t name + (index * elem)

(** [create ~machine ~prng program] — place every array. [prng] supplies
    alignments for [Unknown] arrays (deterministic given the seed). *)
let create ~machine ?prng (program : Ast.program) =
  let v = Simd_machine.Config.vector_len machine in
  (* Strided gathers (and their epilogue virtual iterations) over-read
     proportionally to the stride; scale the guard zones accordingly. *)
  let max_stride =
    List.fold_left
      (fun m (r : Ast.mem_ref) -> max m r.Ast.ref_stride)
      1
      (Ast.program_refs program)
  in
  let guard = 2 * v * max_stride * 4 in
  let cursor = ref guard in
  let bases = ref Util.String_map.empty in
  List.iter
    (fun (d : Ast.array_decl) ->
      let elem = Ast.elem_width d.arr_ty in
      let align_target =
        match d.arr_align with
        | Ast.Known k -> k
        | Ast.Unknown -> (
          match prng with
          | Some p -> Prng.int p ~bound:(v / elem) * elem
          | None -> 0)
      in
      (* Advance to the next address ≡ align_target (mod V). *)
      let base =
        let c = !cursor in
        let rounded = Util.round_up c v + align_target in
        if rounded >= c then rounded else rounded + v
      in
      bases := Util.String_map.add d.arr_name base !bases;
      cursor := base + (d.arr_len * elem) + guard)
    program.arrays;
  { bases = !bases; arena_size = Util.round_up (!cursor + guard) v }

(** [actual_offset t ~machine ~elem r] — the realized stream offset of
    reference [r] under this layout (always concrete, even for arrays
    declared [Unknown]). *)
let actual_offset t ~machine ~elem (r : Ast.mem_ref) =
  Align.concrete ~machine ~base:(base t r.ref_array) ~elem ~offset:r.ref_offset

(** [array_region t ~program name] — [(addr, len_bytes)] of the array's data,
    for memory diffing in differential tests. *)
let array_region t ~(program : Ast.program) name =
  let d = Ast.find_array_exn program name in
  (base t name, d.arr_len * Ast.elem_width d.arr_ty)

let pp fmt t =
  Util.String_map.iter (fun name b -> Format.fprintf fmt "%s@@%d " name b) t.bases
