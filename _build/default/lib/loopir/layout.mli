(** Placement of arrays into the simulator's memory arena, honoring each
    declared base alignment (runtime-unknown alignments are drawn from a
    PRNG, naturally aligned), with ≥2V-byte guard zones around every array
    so truncated out-of-range vector accesses stay well-defined. *)

type t = {
  bases : int Simd_support.Util.String_map.t;  (** array name → base address *)
  arena_size : int;
}

val base : t -> string -> int
val addr : t -> elem:int -> name:string -> index:int -> int

val create :
  machine:Simd_machine.Config.t ->
  ?prng:Simd_support.Prng.t ->
  Ast.program ->
  t

val actual_offset :
  t -> machine:Simd_machine.Config.t -> elem:int -> Ast.mem_ref -> int
(** The realized stream offset under this layout (concrete even for
    [Unknown] declarations). *)

val array_region : t -> program:Ast.program -> string -> int * int
(** [(addr, len_bytes)] of an array's data, for memory diffing. *)

val pp : Format.formatter -> t -> unit
