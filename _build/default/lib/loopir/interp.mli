(** Reference scalar interpreter — the semantic oracle every simdization is
    differentially tested against — with the paper's "ideal scalar
    instruction count" (one op per load, store, and arithmetic node;
    accumulators register-hoisted; no address or loop overhead). *)

type env = {
  layout : Layout.t;
  params : int64 Simd_support.Util.String_map.t;
  trip : int;
}

val make_env :
  layout:Layout.t -> ?params:(string * int64) list -> trip:int -> unit -> env

val param_value : env -> string -> int64
val trip_count : env -> Ast.loop -> int

type counts = { loads : int; stores : int; ariths : int }

val total_ops : counts -> int

val run : mem:Simd_machine.Mem.t -> env:env -> Ast.program -> counts
(** Execute the whole loop; returns the ideal scalar operation counts. *)

val ideal_scalar_ops : Ast.program -> trip:int -> int
(** The ideal count, computed without executing. *)

val data_stored : Ast.program -> trip:int -> int
(** Stored/accumulated elements — the OPD denominator. *)
