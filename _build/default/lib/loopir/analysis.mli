(** Legality analysis: the paper's §4.1 assumptions (uniform element width,
    natural base alignment, stride-one references), a conservative
    dependence test (no stored or accumulated array referenced elsewhere),
    and per-reference stream offsets. *)

type error =
  | Mixed_element_widths of { a : string; b : string }
  | Bad_base_alignment of { array : string; align : int; reason : string }
  | Negative_offset of Ast.mem_ref
  | Store_conflict of { array : string; detail : string }
  | Out_of_bounds of { r : Ast.mem_ref; trip : int; len : int }
  | Bad_reduction of { array : string; reason : string }
  | Empty_body

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Analysis summary attached to a legal program. *)
type t = {
  program : Ast.program;
  machine : Simd_machine.Config.t;
  elem : int;  (** uniform element width D *)
  block : int;  (** blocking factor B = V/D (paper Eq. 7) *)
  offsets : (Ast.mem_ref * Align.t) list;
  all_known : bool;  (** every offset is compile-time *)
}

val offset_of : t -> Ast.mem_ref -> Align.t

val check : machine:Simd_machine.Config.t -> Ast.program -> (t, error) result
val check_exn : machine:Simd_machine.Config.t -> Ast.program -> t

val misaligned_fraction : t -> float
(** Fraction of static references with nonzero or unknown offsets (the
    paper's benchmarks have 75%+). *)

val store_offset : t -> Ast.stmt -> Align.t
