lib/loopir/interp.pp.ml: Ast Hashtbl Layout List Printf Simd_machine Simd_support Util
