lib/loopir/ast.pp.ml: List Ppx_deriving_runtime Printf Simd_machine Simd_support
