lib/loopir/pp.pp.mli: Ast Format
