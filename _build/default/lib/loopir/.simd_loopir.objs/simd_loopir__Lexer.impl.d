lib/loopir/lexer.pp.ml: Ast Format Int64 List Printf Simd_machine String
