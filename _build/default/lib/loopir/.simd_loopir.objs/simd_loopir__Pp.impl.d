lib/loopir/pp.pp.ml: Ast Format Int64 List Printf
