lib/loopir/layout.pp.mli: Ast Format Simd_machine Simd_support
