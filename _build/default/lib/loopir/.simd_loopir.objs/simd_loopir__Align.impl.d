lib/loopir/align.pp.ml: Ast Format Ppx_deriving_runtime Simd_machine Simd_support
