lib/loopir/lexer.pp.mli: Ast Format
