lib/loopir/parse.pp.mli: Ast Lexer
