lib/loopir/analysis.pp.ml: Align Ast Format List Pp Printf Simd_machine Simd_support
