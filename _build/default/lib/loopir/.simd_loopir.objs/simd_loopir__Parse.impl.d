lib/loopir/parse.pp.ml: Ast Format Int64 Lexer List
