lib/loopir/analysis.pp.mli: Align Ast Format Simd_machine
