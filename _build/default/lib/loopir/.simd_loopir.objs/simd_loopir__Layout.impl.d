lib/loopir/layout.pp.ml: Align Ast Format List Printf Prng Simd_machine Simd_support Util
