lib/loopir/interp.pp.mli: Ast Layout Simd_machine Simd_support
