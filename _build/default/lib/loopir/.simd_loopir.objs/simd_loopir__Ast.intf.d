lib/loopir/ast.pp.mli: Ppx_deriving_runtime Simd_machine
