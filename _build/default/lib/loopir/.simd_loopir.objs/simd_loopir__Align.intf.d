lib/loopir/align.pp.mli: Ast Format Ppx_deriving_runtime Simd_machine
