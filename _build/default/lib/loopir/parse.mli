(** Recursive-descent parser for the loop language (see the .ml for the
    grammar). Declarations must precede the loop; array names resolve to
    references, other identifiers to parameters. *)

exception Error of Lexer.pos * string

val program_of_string : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} with a position on malformed input. *)

val program_of_string_result : string -> (Ast.program, string) result
(** Same, with a rendered error message. *)
