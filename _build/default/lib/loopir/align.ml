(** Alignments and stream offsets.

    The paper's key quantity is the {e stream offset} of a memory stream: the
    byte offset, within a [V]-byte chunk, of the first desired value (§3.2).
    For a stride-one reference [a\[i + c\]] it equals
    [(base(a) + c*D) mod V] — a compile-time constant when the base alignment
    is declared, or a runtime value (computed by anding the address with
    [V-1]) otherwise. *)

type t =
  | Known of int  (** compile-time byte offset in [\[0, V)] *)
  | Runtime  (** known only at runtime *)
[@@deriving show { with_path = false }, eq, ord]

let is_known = function Known _ -> true | Runtime -> false

let known_exn = function
  | Known k -> k
  | Runtime -> invalid_arg "Align.known_exn: runtime offset"

(** [of_ref ~machine ~program r] — the stream offset of reference [r]. *)
let of_ref ~machine ~(program : Ast.program) (r : Ast.mem_ref) =
  let decl = Ast.find_array_exn program r.ref_array in
  let d = Ast.elem_width decl.arr_ty in
  match decl.arr_align with
  | Ast.Unknown -> Runtime
  | Ast.Known base ->
    Known
      (Simd_support.Util.pos_mod
         (base + (r.ref_offset * d))
         (Simd_machine.Config.vector_len machine))

(** [concrete ~machine ~base ~elem ~offset] — the actual stream offset of a
    reference once the array's base address is fixed (used by the simulator
    and by runtime-alignment codegen tests). *)
let concrete ~machine ~base ~elem ~offset =
  Simd_support.Util.pos_mod (base + (offset * elem))
    (Simd_machine.Config.vector_len machine)

let pp fmt = function
  | Known k -> Format.pp_print_int fmt k
  | Runtime -> Format.pp_print_string fmt "?"
