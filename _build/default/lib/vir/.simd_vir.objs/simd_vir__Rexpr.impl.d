lib/vir/rexpr.pp.ml: Addr Format Ppx_deriving_runtime Simd_loopir Simd_support
