lib/vir/prog.pp.mli: Expr Format Ppx_deriving_runtime Simd_loopir Simd_machine
