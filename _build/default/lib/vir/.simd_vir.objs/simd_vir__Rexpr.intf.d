lib/vir/rexpr.pp.mli: Addr Format Ppx_deriving_runtime Simd_loopir
