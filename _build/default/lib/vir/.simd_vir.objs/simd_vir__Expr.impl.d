lib/vir/expr.pp.ml: Addr List Ppx_deriving_runtime Rexpr Simd_loopir
