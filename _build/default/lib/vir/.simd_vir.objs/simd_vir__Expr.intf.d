lib/vir/expr.pp.mli: Addr Ppx_deriving_runtime Rexpr Simd_loopir
