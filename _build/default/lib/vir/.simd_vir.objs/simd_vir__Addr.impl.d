lib/vir/addr.pp.ml: Format Ppx_deriving_runtime Printf Simd_loopir
