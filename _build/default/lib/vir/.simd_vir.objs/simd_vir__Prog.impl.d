lib/vir/prog.pp.ml: Addr Expr Format List Ppx_deriving_runtime Rexpr Simd_loopir Simd_machine String
