lib/vir/addr.pp.mli: Format Ppx_deriving_runtime Simd_loopir
