(** Vector expressions and statements of the vector IR — the code-level
    counterpart of the data reorganization graph, with stream shifts
    lowered to register-level [Shiftpair]s and partial stores to [Splice]d
    stores. *)

type vexpr =
  | Load of Addr.t  (** truncating vector load *)
  | Op of Simd_loopir.Ast.binop * vexpr * vexpr
  | Splat of Simd_loopir.Ast.expr  (** loop-invariant scalar, replicated *)
  | Shiftpair of vexpr * vexpr * Rexpr.t  (** paper §2.2 *)
  | Splice of vexpr * vexpr * Rexpr.t
  | Pack of vexpr * vexpr
      (** even-lane gather of the 2V concatenation (strided-load extension) *)
  | Temp of string
[@@deriving show, eq, ord]

type stmt =
  | Store of Addr.t * vexpr  (** truncating vector store *)
  | Assign of string * vexpr
  | If of Rexpr.cond * stmt list * stmt list  (** runtime guard (§4.4) *)
[@@deriving show, eq, ord]

val shift_iter_rexpr : Rexpr.t -> by:int -> Rexpr.t

val shift_iter : vexpr -> by:int -> vexpr
(** Rewrite counter-carrying addresses so that evaluating at iteration [i]
    equals evaluating the original at [i + by]. Raises on temporaries
    (their values are iteration-bound). *)

val freeze : vexpr -> i:int -> vexpr
(** Resolve the loop counter to a constant everywhere (temps are kept). *)

val freeze_rexpr : Rexpr.t -> i:int -> Rexpr.t

val fold_vexpr : ('a -> vexpr -> 'a) -> 'a -> vexpr -> 'a
(** Children-first fold over every node. *)

val fold_stmts : ('a -> vexpr -> 'a) -> 'a -> stmt list -> 'a
val map_stmts_exprs : (vexpr -> vexpr) -> stmt list -> stmt list
val loads_of_stmts : stmt list -> Addr.t list
val count_nodes : (vexpr -> bool) -> stmt list -> int
val is_shift : vexpr -> bool
val is_load : vexpr -> bool
val temps_written : stmt list -> string list
