(** Addresses in the vector IR: the byte address of
    [array\[scale*i + offset\]] — [scale] is the reference's stride (0 for
    counter-free addresses used by prologue/epilogue-specialized code and
    accumulator cells). Offsets are in elements. *)

type t = {
  array : string;
  offset : int;  (** element offset; may be negative (guard-zone reads) *)
  scale : int;  (** counter multiplier; 0 = counter-free *)
}
[@@deriving show, eq, ord]

val of_ref : Simd_loopir.Ast.mem_ref -> t
val with_counter : t -> bool

val shift_iter : t -> by:int -> t
(** The paper's [Substitute(i → i + by)]: advance [scale * by] elements. *)

val at_iteration : t -> i:int -> int
val freeze : t -> i:int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
