(** Addresses in the vector IR.

    Every address denotes the byte address of an array element:
    [&array\[scale*i + offset\]] where [i] is the loop counter. [scale] is
    the reference's stride (1 for the paper's stride-one references, 2/4
    for the strided-gather extension) or 0 for counter-free addresses
    (prologue/epilogue-specialized code, accumulator cells). Offsets are in
    elements, not bytes.

    Because references are affine in [i], the only address transformation
    codegen needs is the paper's [Substitute(n, i → i ± B)], which is
    {!shift_iter}. *)

type t = {
  array : string;
  offset : int;  (** element offset; may be negative (guard-zone reads) *)
  scale : int;  (** counter multiplier; 0 = counter-free *)
}
[@@deriving show { with_path = false }, eq, ord]

let of_ref (r : Simd_loopir.Ast.mem_ref) =
  { array = r.ref_array; offset = r.ref_offset; scale = r.ref_stride }

let with_counter t = t.scale <> 0

(** [shift_iter t ~by] implements [Substitute(i → i + by)]: the address at
    iteration [i + by] is the address at [i] advanced [scale * by]
    elements. No-op on counter-free addresses. *)
let shift_iter t ~by =
  if t.scale = 0 then t else { t with offset = t.offset + (t.scale * by) }

(** [at_iteration t ~i] resolves the counter: the concrete element index is
    [scale*i + offset]. *)
let at_iteration t ~i = (t.scale * i) + t.offset

(** [freeze t ~i] turns a counter-carrying address into the counter-free
    address it denotes at iteration [i]. *)
let freeze t ~i = { t with offset = at_iteration t ~i; scale = 0 }

let pp fmt t =
  let idx =
    match t.scale with
    | 0 -> ""
    | 1 -> "i"
    | s -> Printf.sprintf "%d*i" s
  in
  if t.scale = 0 then Format.fprintf fmt "&%s[%d]" t.array t.offset
  else if t.offset = 0 then Format.fprintf fmt "&%s[%s]" t.array idx
  else if t.offset > 0 then Format.fprintf fmt "&%s[%s+%d]" t.array idx t.offset
  else Format.fprintf fmt "&%s[%s-%d]" t.array idx (-t.offset)

let to_string t = Format.asprintf "%a" pp t
