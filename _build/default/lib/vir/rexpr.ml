(** Compile-time-or-runtime integer expressions.

    Shift amounts, splice points and epilogue-leftover counts are ordinary
    integers when every alignment and the trip count are compile-time
    constants, but must be computed at runtime otherwise (paper §4.4). This
    little expression language covers exactly what the code generator needs:
    stream offsets obtained by anding an address with [V-1], the runtime trip
    count, the steady-loop exit counter, and affine arithmetic on them. *)

type t =
  | Const of int
  | Offset_of of Addr.t
      (** [addr mod V] — the runtime stream offset of a (counter-free or
          counter-carrying, evaluated at the current iteration) address *)
  | Trip  (** the runtime trip count [ub] *)
  | Counter  (** the current value of the (simdized) loop counter [i] *)
  | Add of t * t
  | Sub of t * t
  | Mul_const of t * int
  | Mod_const of t * int  (** modulo a positive compile-time constant *)
[@@deriving show { with_path = false }, eq, ord]

let is_const = function Const _ -> true | _ -> false

let const_exn = function
  | Const c -> c
  | e -> invalid_arg ("Rexpr.const_exn: " ^ show e)

(* Constant-folding smart constructors: compile-time cases stay [Const]. *)
let add a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const 0, e | e, Const 0 -> e
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | Const x, Const y -> Const (x - y)
  | e, Const 0 -> e
  | _ -> Sub (a, b)

let mul_const a k =
  match a with
  | Const x -> Const (x * k)
  | _ -> if k = 1 then a else Mul_const (a, k)

let mod_const a m =
  if m <= 0 then invalid_arg "Rexpr.mod_const: non-positive modulus";
  match a with
  | Const x -> Const (Simd_support.Util.pos_mod x m)
  | _ -> Mod_const (a, m)

(** [of_align a ~addr] — lift an analysis-level stream offset: compile-time
    offsets become constants, runtime ones become [addr & (V-1)]
    computations on the reference's address. *)
let of_align (a : Simd_loopir.Align.t) ~addr =
  match a with
  | Simd_loopir.Align.Known k -> Const k
  | Simd_loopir.Align.Runtime -> Offset_of addr

(** Comparisons for guard statements. *)
type cond = Ge of t * t | Gt of t * t | Le of t * t | Lt of t * t
[@@deriving show { with_path = false }, eq, ord]

let rec pp fmt = function
  | Const c -> Format.pp_print_int fmt c
  | Offset_of a -> Format.fprintf fmt "offset(%a)" Addr.pp a
  | Trip -> Format.pp_print_string fmt "ub"
  | Counter -> Format.pp_print_string fmt "i"
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul_const (a, k) -> Format.fprintf fmt "(%a * %d)" pp a k
  | Mod_const (a, m) -> Format.fprintf fmt "(%a mod %d)" pp a m

let pp_cond fmt = function
  | Ge (a, b) -> Format.fprintf fmt "%a >= %a" pp a pp b
  | Gt (a, b) -> Format.fprintf fmt "%a > %a" pp a pp b
  | Le (a, b) -> Format.fprintf fmt "%a <= %a" pp a pp b
  | Lt (a, b) -> Format.fprintf fmt "%a < %a" pp a pp b
