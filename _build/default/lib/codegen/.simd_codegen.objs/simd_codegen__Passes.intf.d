lib/codegen/passes.pp.mli: Analysis Expr Names Rexpr Simd_loopir Simd_vir
