lib/codegen/peel.pp.mli: Format Simd_loopir
