lib/codegen/names.pp.ml: Printf
