lib/codegen/gen.pp.ml: Addr Align Analysis Ast Expr Format List Names Ppx_deriving_runtime Prog Rexpr Simd_dreorg Simd_loopir Simd_machine Simd_support Simd_vir
