lib/codegen/passes.pp.ml: Addr Align Analysis Array Ast Expr Hashtbl List Names Option Pp Printf Rexpr Simd_loopir Simd_machine Simd_support Simd_vir
