lib/codegen/driver.pp.ml: Analysis Ast Format Gen List Names Passes Peel Ppx_deriving_runtime Prog Simd_dreorg Simd_loopir Simd_machine Simd_vir
