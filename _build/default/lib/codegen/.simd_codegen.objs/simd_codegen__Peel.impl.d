lib/codegen/peel.pp.ml: Align Analysis Ast Format List Simd_loopir Simd_machine Simd_support
