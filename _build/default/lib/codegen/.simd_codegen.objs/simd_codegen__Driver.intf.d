lib/codegen/driver.pp.mli: Analysis Ast Format Peel Ppx_deriving_runtime Prog Simd_dreorg Simd_loopir Simd_machine Simd_vir
