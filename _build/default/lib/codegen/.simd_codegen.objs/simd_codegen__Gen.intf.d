lib/codegen/gen.pp.mli: Analysis Ast Expr Format Names Ppx_deriving_runtime Prog Simd_dreorg Simd_loopir Simd_vir
