lib/codegen/names.pp.mli:
