(** Fresh vector-temporary names (per-generation counter; readable
    prefixes). *)

type t

val create : unit -> t
val fresh : t -> prefix:string -> string

val fresh_pair : t -> string * string
(** [(old, new)] pair for one software-pipelined stream shift (Fig. 10). *)
