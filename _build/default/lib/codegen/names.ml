(** Fresh vector-temporary names.

    Names are made unique by a per-generation counter; prefixes keep the
    printed code readable ([old3], [new3], [cse7], [pc2], [splat1]). *)

type t = { mutable counter : int }

let create () = { counter = 0 }

let fresh t ~prefix =
  let n = t.counter in
  t.counter <- n + 1;
  Printf.sprintf "%s%d" prefix n

(** Paired names for one software-pipelined stream shift (paper Fig. 10's
    [old]/[new] registers). *)
let fresh_pair t =
  let n = t.counter in
  t.counter <- n + 1;
  (Printf.sprintf "old%d" n, Printf.sprintf "new%d" n)
