(** SIMD code generation from data reorganization graphs (paper §4):
    standard (Fig. 7) and software-pipelined (Fig. 10) stream-shift
    lowering, prologue/steady/epilogue statement generation (Fig. 9),
    blocked steady-loop bounds (Eqs. 12/13/15), guarded epilogue templates
    subsuming Eqs. 8/9/14/16, and the reduction extension's epilogue
    masking and finalization. See the implementation header for details. *)

open Simd_loopir
open Simd_vir

type mode = Standard | Pipelined [@@deriving show, eq]

type error =
  | Trip_too_small of { trip : int; needed : int }
  | Unsupported_shift of string

val pp_error : Format.formatter -> error -> unit

val generate :
  analysis:Analysis.t ->
  names:Names.t ->
  mode:mode ->
  (Ast.stmt * Simd_dreorg.Graph.t) list ->
  (Prog.t, error) result
(** Produce the simdized program, one graph per body statement in order.
    The epilogue is the guarded body template, duplicated for two virtual
    iterations; the driver re-derives it after optimization passes. *)

val derive_epilogue :
  analysis:Analysis.t ->
  reductions:Prog.reduction list ->
  Expr.stmt list ->
  Expr.stmt list
(** Guard a (possibly optimized) steady body's stores and reduction
    accumulations by their remaining byte/element counts. *)

val finalize_reductions :
  analysis:Analysis.t -> names:Names.t -> Prog.reduction list -> Expr.stmt list
(** Horizontal combine + masked scalar write-back, run once after the last
    epilogue iteration. *)
