lib/bench_infra/synth.pp.ml: Ast List Ppx_deriving_runtime Printf Prng Simd_loopir Simd_machine Simd_support Util
