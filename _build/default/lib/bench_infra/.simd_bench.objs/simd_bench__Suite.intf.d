lib/bench_infra/suite.pp.mli: Ast Format Simd_codegen Simd_dreorg Simd_loopir Simd_machine Synth
