lib/bench_infra/measure.pp.mli: Ast Interp Lb Simd_codegen Simd_dreorg Simd_loopir Simd_sim
