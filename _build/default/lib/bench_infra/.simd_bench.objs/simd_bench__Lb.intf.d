lib/bench_infra/lb.pp.mli: Analysis Ast Ppx_deriving_runtime Simd_dreorg Simd_loopir
