lib/bench_infra/lb.pp.ml: Align Analysis Ast List Ppx_deriving_runtime Simd_dreorg Simd_loopir Simd_support
