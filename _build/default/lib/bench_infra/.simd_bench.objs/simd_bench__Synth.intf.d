lib/bench_infra/synth.pp.mli: Ast Ppx_deriving_runtime Simd_loopir Simd_machine
