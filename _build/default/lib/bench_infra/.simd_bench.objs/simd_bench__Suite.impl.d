lib/bench_infra/suite.pp.ml: Analysis Array Ast Float Format Lb List Measure Printf Simd_codegen Simd_dreorg Simd_loopir Simd_machine Simd_support String Synth
