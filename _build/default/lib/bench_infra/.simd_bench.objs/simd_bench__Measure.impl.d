lib/bench_infra/measure.pp.ml: Analysis Ast Format Interp Lb List Simd_codegen Simd_dreorg Simd_loopir Simd_sim
