(** The analytic lower bound of §5.3: distinct 16-byte-aligned loads and
    stores, a minimum reorganization count ((n−1) per statement for the
    optimized policies; the deterministic m misaligned streams for
    zero-shift), and the data computations — explicitly excluding address
    computation and loop overhead. *)

open Simd_loopir
module Policy = Simd_dreorg.Policy

type t = {
  distinct_load_streams : int;
  store_streams : int;
  min_shifts : int;
  vops : int;
  block : int;
  stmts : int;
}
[@@deriving show, eq]

val stream_key : analysis:Analysis.t -> Ast.mem_ref -> string * (int * int)
(** Chunk identity of a load stream (normalized element offset). *)

val compute : analysis:Analysis.t -> policy:Policy.t -> t

val shifts_per_datum : t -> float
val opd : t -> float
(** The bound in operations per datum. *)

val seq_opd : analysis:Analysis.t -> float
(** The non-simdized reference: ideal scalar operations per datum. *)
