(** Synthesized loop benchmarks (paper §5.3), parameterized by
    (l, s, n, b, r): loads per statement, statements, trip count, alignment
    bias, and cross-statement array reuse. Fully deterministic per seed. *)

open Simd_loopir

type spec = {
  stmts : int;  (** s *)
  loads_per_stmt : int;  (** l *)
  trip : int;  (** n *)
  elem : Ast.elem_ty;
  bias : float;  (** b *)
  reuse : float;  (** r *)
  stride_prob : float;  (** extension: stride-2/4 gather probability *)
  reduce_prob : float;  (** extension: reduction-statement probability *)
  seed : int;
}
[@@deriving show, eq]

val default_spec : spec
(** S1*L6, int32, trip 1000, bias = reuse = 0.3 (the paper's Figure 11
    benchmark shape). *)

val generate : machine:Simd_machine.Config.t -> spec -> Ast.program

val hide_alignments : Ast.program -> Ast.program
(** The same loop compiled without alignment information (the "align at
    runtime" measurement columns). *)

val hide_trip : Ast.program -> Ast.program
(** The same loop with a runtime trip count (§4.4's unknown bounds). *)

val const_trip_exn : Ast.program -> int

val benchmark :
  machine:Simd_machine.Config.t -> spec:spec -> count:int -> Ast.program list
(** [count] loops sharing the spec's shape, distinct seeds (the paper's
    50-loop benchmarks). *)
