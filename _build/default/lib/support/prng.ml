(** Deterministic pseudo-random number generation.

    All randomness in this repository (loop synthesis, property tests that
    need auxiliary draws, workload placement) flows through this SplitMix64
    implementation so that every experiment is reproducible from a seed.
    SplitMix64 is the generator from Steele, Lea & Flood, "Fast Splittable
    Pseudorandom Number Generators" (OOPSLA 2014); it passes BigCrush and has
    a trivial, allocation-free state (a single [int64]). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One SplitMix64 step: advance the state by the golden gamma and scramble
   the result with two xor-shift-multiply rounds. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t ~bound] draws a uniform integer in [\[0, bound)]. Requires
    [bound > 0]. Uses the high bits (SplitMix64's low bits are fine, but high
    bits are marginally better) with rejection to avoid modulo bias. *)
let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  (* Rejection sampling on 63-bit non-negative draws. *)
  let rec loop () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw bound64 in
    (* Reject draws from the final partial bucket. *)
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

(** [bool t] draws a fair coin. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [float t] draws a uniform float in [\[0, 1)]. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** [chance t p] is true with probability [p]. *)
let chance t p = float t < p

(** [pick t xs] draws a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t ~bound:(List.length xs))

(** [pick_array t xs] draws a uniform element of the non-empty array [xs]. *)
let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Prng.pick_array: empty array";
  xs.(int t ~bound:(Array.length xs))

(** [range t ~lo ~hi] draws a uniform integer in [\[lo, hi\]] (inclusive). *)
let range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t ~bound:(hi - lo + 1)

(** [split t] derives an independent generator, advancing [t]. *)
let split t =
  let seed = next_int64 t in
  { state = seed }

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
