(** Small general-purpose helpers shared across the libraries. *)

val floor_div : int -> int -> int
(** Mathematical floor division for a positive divisor (correct for
    negative dividends, unlike OCaml's truncating [/]). *)

val pos_mod : int -> int -> int
(** Mathematical modulus in [\[0, b)] for [b > 0]. *)

val round_down : int -> int -> int
(** [round_down a b] — [a] rounded down to a multiple of [b]. *)

val round_up : int -> int -> int
(** [round_up a b] — [a] rounded up to a multiple of [b]. *)

val is_pow2 : int -> bool
(** Positive power of two? *)

val log2 : int -> int
(** Base-2 logarithm of a positive power of two. *)

val gcd : int -> int -> int
(** Greatest common divisor of non-negative arguments. *)

val clamp : lo:int -> hi:int -> int -> int
(** Restrict to [\[lo, hi\]]. *)

val list_init : int -> (int -> 'a) -> 'a list
val sum : int list -> int
val sum_by : ('a -> int) -> 'a list -> int
val sum_float : float list -> float

val mean : float list -> float
(** Arithmetic mean of a non-empty list. *)

val harmonic_mean : float list -> float
(** Harmonic mean of a non-empty list of positive floats — the aggregation
    the paper uses over its 50-loop benchmarks. *)

val max_by : ('a -> 'b) -> 'a list -> 'a
(** Element of a non-empty list maximizing the measure. *)

val group_count : 'a list -> ('a * int) list
(** Occurrence counts, in first-appearance order. *)

val dedup : 'a list -> 'a list
(** Remove duplicates, keeping first occurrences in order. *)

module String_map : Map.S with type key = string
module Int_map : Map.S with type key = int
module Int_set : Set.S with type elt = int
module String_set : Set.S with type elt = string
