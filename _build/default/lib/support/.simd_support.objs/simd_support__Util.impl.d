lib/support/util.ml: Hashtbl Int List Map Set String
