lib/support/prng.mli:
