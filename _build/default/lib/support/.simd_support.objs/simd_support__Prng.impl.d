lib/support/prng.ml: Array Int64 List
