lib/support/util.mli: Map Set
