(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in this repository flows through this generator so that
    every experiment is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] — a generator with the given seed. *)

val copy : t -> t
(** [copy t] — an independent clone at the current state. *)

val next_int64 : t -> int64
(** One raw SplitMix64 output; advances the state. *)

val int : t -> bound:int -> int
(** [int t ~bound] — uniform in [\[0, bound)]; rejection-sampled (no modulo
    bias). Requires [bound > 0]. *)

val bool : t -> bool
(** A fair coin. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val chance : t -> float -> bool
(** [chance t p] — true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val range : t -> lo:int -> hi:int -> int
(** [range t ~lo ~hi] — uniform in the inclusive range [\[lo, hi\]]. *)

val split : t -> t
(** Derive an independent generator, advancing [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
