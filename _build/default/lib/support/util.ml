(** Small general-purpose helpers shared across the libraries. *)

(** [floor_div a b] is mathematical floor division for [b > 0], correct for
    negative [a] (OCaml's [/] truncates toward zero). *)
let floor_div a b =
  if b <= 0 then invalid_arg "Util.floor_div: non-positive divisor";
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

(** [pos_mod a b] is the mathematical modulus in [\[0, b)] for [b > 0]. *)
let pos_mod a b =
  if b <= 0 then invalid_arg "Util.pos_mod: non-positive modulus";
  let r = a mod b in
  if r < 0 then r + b else r

(** [round_down a b] rounds [a] down to a multiple of [b]. *)
let round_down a b = floor_div a b * b

(** [round_up a b] rounds [a] up to a multiple of [b]. *)
let round_up a b = round_down (a + b - 1) b

(** [is_pow2 n] holds when [n] is a positive power of two. *)
let is_pow2 n = n > 0 && n land (n - 1) = 0

(** [log2 n] is the base-2 logarithm of a positive power of two. *)
let log2 n =
  if not (is_pow2 n) then invalid_arg "Util.log2: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** [gcd a b] on non-negative arguments. *)
let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]]. *)
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

(** [list_init n f] is [List.init] with a friendlier argument order. *)
let list_init n f = List.init n f

(** [sum xs] sums an int list. *)
let sum xs = List.fold_left ( + ) 0 xs

(** [sum_by f xs] sums [f x] over [xs]. *)
let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

(** [sum_float xs] sums a float list. *)
let sum_float xs = List.fold_left ( +. ) 0.0 xs

(** [mean xs] is the arithmetic mean of a non-empty float list. *)
let mean xs =
  match xs with
  | [] -> invalid_arg "Util.mean: empty list"
  | _ -> sum_float xs /. float_of_int (List.length xs)

(** [harmonic_mean xs] is the harmonic mean of a non-empty list of positive
    floats — the aggregation the paper uses over its 50-loop benchmarks. *)
let harmonic_mean xs =
  match xs with
  | [] -> invalid_arg "Util.harmonic_mean: empty list"
  | _ ->
    let n = float_of_int (List.length xs) in
    let denom =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Util.harmonic_mean: non-positive element";
          acc +. (1.0 /. x))
        0.0 xs
    in
    n /. denom

(** [max_by f xs] is the element of non-empty [xs] maximizing [f]. *)
let max_by f xs =
  match xs with
  | [] -> invalid_arg "Util.max_by: empty list"
  | x :: rest ->
    fst
      (List.fold_left
         (fun (best, bv) y ->
           let fy = f y in
           if fy > bv then (y, fy) else (best, bv))
         (x, f x) rest)

(** [group_count xs] counts occurrences, returning (value, count) pairs in
    first-appearance order. *)
let group_count xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      match Hashtbl.find_opt tbl x with
      | Some n -> Hashtbl.replace tbl x (n + 1)
      | None ->
        Hashtbl.add tbl x 1;
        order := x :: !order)
    xs;
  List.rev_map (fun x -> (x, Hashtbl.find tbl x)) !order

(** [dedup xs] removes duplicates, keeping first occurrences in order. *)
let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

(** [String_map] and [Int_map] are ready-made map instances. *)
module String_map = Map.Make (String)
module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)
module String_set = Set.Make (String)
