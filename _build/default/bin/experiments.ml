(* experiments — regenerate every table and figure of the paper's §5.

   Subcommands: fig11, fig12, table1, table2, coverage, all.
   See EXPERIMENTS.md for the paper-vs-measured record. *)

open Cmdliner

let machine = Simd.Machine.default

let fig ~reassoc ~loops ~seed () =
  let spec = { Simd.Synth.default_spec with Simd.Synth.seed } in
  let f = Simd.Suite.opd_figure ~machine ~spec ~count:loops ~reassoc in
  Format.printf "%a@." Simd.Suite.pp_opd_figure f

let table ~elem ~loops ~seed () =
  let base_spec = { Simd.Synth.default_spec with Simd.Synth.seed } in
  let t = Simd.Suite.speedup_table ~machine ~elem ~count:loops ~base_spec () in
  Format.printf "%a@." Simd.Suite.pp_speedup_table t

let coverage ~loops ~seed () =
  let r = Simd.Suite.coverage ~machine ~seed ~loops () in
  Format.printf "%a@." Simd.Suite.pp_coverage r;
  if r.Simd.Suite.failures <> [] then exit 1

let extensions ~loops:_ ~seed:_ () =
  (* The future-work extension measurements quoted in EXPERIMENTS.md. *)
  let report label ?(config = Simd.Driver.default) src =
    let program = Simd.parse_exn src in
    (match Simd.verify ~config program with
    | Ok () -> ()
    | Error m -> failwith (label ^ ": " ^ m));
    let sample, opd, speedup = Simd.measure ~config program in
    let c = sample.Simd.Measure.counts in
    Format.printf
      "%-28s %8.3f opd  %6.2fx speedup  (LB %.2fx; %d loads, %d shifts, %d \
       packs)@."
      label opd speedup
      (Simd.Measure.lb_speedup sample)
      c.Simd.Exec.vloads c.Simd.Exec.vshifts c.Simd.Exec.vpacks
  in
  Format.printf "Extension measurements (verified differentially first):@.";
  report "dot+max reductions"
    "int32 dot[1] @ 12;\nint32 hi[1] @ 4;\nint32 a[1100] @ 4;\nint32 b[1100] @ 8;\n\
     for (i = 0; i < 1000; i++) { dot += a[i+1] * b[i+3]; hi max= a[i+1]; }";
  report "int16 sum reduction"
    "int16 s[1] @ 2;\nint16 x[1100] @ 6;\n\
     for (i = 0; i < 1000; i++) { s += x[i+3]; }";
  report "deinterleave (stride 2)"
    "int32 re[1024] @ 0;\nint32 im[1024] @ 4;\nint32 x[2100] @ 8;\n\
     for (i = 0; i < 1000; i++) { re[i] = x[2*i]; im[i+1] = x[2*i+1]; }"
    ~config:
      { Simd.Driver.default with
        Simd.Driver.reuse = Simd.Driver.Predictive_commoning };
  report "RGBA channel (stride 4, i8)"
    "int8 red[1100] @ 1;\nint8 rgba[4400] @ 2;\n\
     for (i = 0; i < 1000; i++) { red[i+1] = rgba[4*i+2]; }"
    ~config:
      { Simd.Driver.default with
        Simd.Driver.reuse = Simd.Driver.Predictive_commoning };
  report "strided reduction"
    "int32 s[1] @ 4;\nint32 x[2100] @ 4;\n\
     for (i = 0; i < 1000; i++) { s += x[2*i+1]; }"

let ablations ~loops ~seed () =
  let spec = { Simd.Synth.default_spec with Simd.Synth.seed } in
  let count = max 4 (loops / 2) in
  Format.printf "%a@." Simd.Suite.pp_ablation
    (Simd.Suite.ablation_reuse_unroll ~machine ~spec ~count ());
  Format.printf "%a@." Simd.Suite.pp_ablation
    (Simd.Suite.ablation_memnorm ~machine ());
  Format.printf "%a@." Simd.Suite.pp_ablation
    (Simd.Suite.ablation_vector_length ~spec ~count ());
  Format.printf "%a@." Simd.Suite.pp_ablation
    (Simd.Suite.ablation_elem_width ~machine ~count ());
  Format.printf "%a@." Simd.Suite.pp_peeling
    (Simd.Suite.peeling_coverage ~machine ~count:(2 * count) ())

let loops_arg ~default =
  Arg.(
    value & opt int default
    & info [ "n"; "loops" ] ~docv:"N" ~doc:"Number of loops per benchmark.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Synthesis seed.")

let subcmd name doc ~default_loops f =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (fun loops seed () -> f ~loops ~seed ())
      $ loops_arg ~default:default_loops $ seed_arg $ const ())

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (figures 11/12, tables 1/2, coverage).")
    Term.(
      const (fun loops seed () ->
          Format.printf "=== Figure 11: OPD per scheme, OffsetReassoc OFF ===@.";
          fig ~reassoc:false ~loops ~seed ();
          Format.printf "=== Figure 12: OPD per scheme, OffsetReassoc ON ===@.";
          fig ~reassoc:true ~loops ~seed ();
          Format.printf "=== Table 1: speedups, 4 ints per vector ===@.";
          table ~elem:Simd.Ast.I32 ~loops ~seed ();
          Format.printf "=== Table 2: speedups, 8 shorts per vector ===@.";
          table ~elem:Simd.Ast.I16 ~loops ~seed ();
          Format.printf "=== Coverage (§5.4) ===@.";
          coverage ~loops:(Stdlib.max 400 loops) ~seed ();
          Format.printf "=== Ablations ===@.";
          ablations ~loops ~seed ();
          Format.printf "=== Extensions ===@.";
          extensions ~loops ~seed ())
      $ loops_arg ~default:50 $ seed_arg $ const ())

let cmd =
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0"
       ~doc:"Reproduce the paper's evaluation (PLDI 2004, Eichenberger et al.)")
    [
      subcmd "fig11" "OPD breakdown per scheme, reassociation off." ~default_loops:50
        (fun ~loops ~seed () -> fig ~reassoc:false ~loops ~seed ());
      subcmd "fig12" "OPD breakdown per scheme, reassociation on." ~default_loops:50
        (fun ~loops ~seed () -> fig ~reassoc:true ~loops ~seed ());
      subcmd "table1" "Speedups with 4 ints per vector." ~default_loops:50
        (fun ~loops ~seed () -> table ~elem:Simd.Ast.I32 ~loops ~seed ());
      subcmd "table2" "Speedups with 8 shorts per vector." ~default_loops:50
        (fun ~loops ~seed () -> table ~elem:Simd.Ast.I16 ~loops ~seed ());
      subcmd "coverage" "Random-loop robustness sweep (§5.4)." ~default_loops:400
        (fun ~loops ~seed () -> coverage ~loops ~seed ());
      subcmd "ablations"
        "Design-choice studies: reuse x unroll, memnorm, vector length, \
         element width, peeling baseline."
        ~default_loops:20
        (fun ~loops ~seed () -> ablations ~loops ~seed ());
      subcmd "extensions"
        "Future-work extensions: reductions and strided gathers."
        ~default_loops:1
        (fun ~loops ~seed () -> extensions ~loops ~seed ());
      all_cmd;
    ]

let () = exit (Cmd.eval cmd)
