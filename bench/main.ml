(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printing the same rows/series), then times the pipeline
   behind each experiment with Bechamel — one Test.make per table/figure.

   Usage:  dune exec bench/main.exe [-- --loops N] [--jobs N] [--no-bench]
           [--json PATH] [--cache DIR]
   N defaults to 50 (the paper's benchmark size). --jobs N computes the
   five figure/table artifacts on a Simd.Par.Pool of N workers (the
   printed artifacts are identical to the sequential run; the pool report
   goes to stderr). --json also writes every figure/table row, the static
   cost reports of the benchmark programs under each policy, and the
   Bechamel timings to PATH as one JSON document. The static reports are
   served from the content-addressed artifact cache at --cache DIR
   (default _bench_cache; --no-cache disables) — a scheme whose program,
   config, and library version are unchanged since the last run is not
   recompiled, and the report notes the time that saved. *)

open Bechamel
open Toolkit

let machine = Simd.Machine.default

let loops, jobs, run_bench, json_path, cache_dir =
  let loops = ref 50 in
  let jobs = ref 1 in
  let bench = ref true in
  let json = ref None in
  let cache = ref (Some "_bench_cache") in
  let rec parse = function
    | [] -> ()
    | "--loops" :: n :: rest ->
      loops := int_of_string n;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | "--no-bench" :: rest ->
      bench := false;
      parse rest
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | "--cache" :: dir :: rest ->
      cache := Some dir;
      parse rest
    | "--no-cache" :: rest ->
      cache := None;
      parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (!loops, !jobs, !bench, !json, !cache)

(* ------------------------------------------------------------------ *)
(* Regenerate the paper's tables and figures                           *)
(* ------------------------------------------------------------------ *)

let spec = Simd.Synth.default_spec

(* The five independent artifact computations, as data so --jobs can farm
   them out to a Simd.Par.Pool. Results are plain records — marshal-safe. *)
type artifact = Fig11 | Fig12 | Table1 | Table2 | Cov

type artifact_result =
  | Fig of Simd.Suite.opd_figure
  | Table of Simd.Suite.speedup_table
  | Coverage of Simd.Suite.coverage_report

let compute = function
  | Fig11 ->
    Fig (Simd.Suite.opd_figure ~machine ~spec ~count:loops ~reassoc:false)
  | Fig12 ->
    Fig (Simd.Suite.opd_figure ~machine ~spec ~count:loops ~reassoc:true)
  | Table1 ->
    Table (Simd.Suite.speedup_table ~machine ~elem:Simd.Ast.I32 ~count:loops ())
  | Table2 ->
    Table (Simd.Suite.speedup_table ~machine ~elem:Simd.Ast.I16 ~count:loops ())
  | Cov -> Coverage (Simd.Suite.coverage ~machine ~loops:(max 100 loops) ())

let fig11, fig12, table1, table2, cov =
  let artifacts = [| Fig11; Fig12; Table1; Table2; Cov |] in
  let results =
    if jobs <= 1 then Array.map compute artifacts
    else begin
      let results, report =
        Simd.Par.Pool.map ~workers:jobs
          (fun i -> compute artifacts.(i))
          (Array.length artifacts)
      in
      Format.eprintf "%a@." Simd.Par.Pool.pp_report report;
      (* A lost worker just means we recompute that artifact here. *)
      Array.mapi
        (fun i (r : _ Simd.Par.Pool.result) ->
          match r.Simd.Par.Pool.outcome with
          | Simd.Par.Pool.Done v -> v
          | _ -> compute artifacts.(i))
        results
    end
  in
  match results with
  | [| Fig a; Fig b; Table c; Table d; Coverage e |] -> (a, b, c, d, e)
  | _ -> assert false

let () =
  Format.printf
    "=== Figure 11: OPD per scheme (S1*L6, int32), OffsetReassoc OFF ===@.";
  Format.printf "%a@." Simd.Suite.pp_opd_figure fig11;
  Format.printf
    "=== Figure 12: OPD per scheme (S1*L6, int32), OffsetReassoc ON ===@.";
  Format.printf "%a@." Simd.Suite.pp_opd_figure fig12;
  Format.printf "=== Table 1: speedups, 4 ints per vector ===@.";
  Format.printf "%a@." Simd.Suite.pp_speedup_table table1;
  Format.printf "=== Table 2: speedups, 8 shorts per vector ===@.";
  Format.printf "%a@." Simd.Suite.pp_speedup_table table2;
  Format.printf "=== Coverage (§5.4) ===@.";
  Format.printf "%a@." Simd.Suite.pp_coverage cov

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the pipeline behind each experiment      *)
(* ------------------------------------------------------------------ *)

let fig_program = Simd.Synth.generate ~machine spec

let table1_program =
  Simd.Synth.generate ~machine
    { spec with Simd.Synth.stmts = 4; loads_per_stmt = 8 }

let table2_program =
  Simd.Synth.generate ~machine
    { spec with Simd.Synth.stmts = 4; loads_per_stmt = 4; elem = Simd.Ast.I16 }

let coverage_program =
  Simd.Synth.generate ~machine
    { spec with Simd.Synth.stmts = 2; loads_per_stmt = 4 }

let config policy reuse =
  { Simd.Driver.default with Simd.Driver.machine; policy; reuse }

let measure_once ~config program = ignore (Simd.Measure.run ~config program)

let tests =
  [
    (* Figure 11: simdize + simulate one S1*L6 loop under headline schemes
       (reassociation off). *)
    Test.make ~name:"fig11/dominant-sp"
      (Staged.stage (fun () ->
           measure_once
             ~config:
               (config Simd.Policy.Dominant Simd.Driver.Software_pipelining)
             fig_program));
    Test.make ~name:"fig11/zero-sp"
      (Staged.stage (fun () ->
           measure_once
             ~config:(config Simd.Policy.Zero Simd.Driver.Software_pipelining)
             fig_program));
    (* Figure 12: the reassociated variant. *)
    Test.make ~name:"fig12/lazy-pc+reassoc"
      (Staged.stage (fun () ->
           measure_once
             ~config:
               {
                 (config Simd.Policy.Lazy Simd.Driver.Predictive_commoning) with
                 Simd.Driver.reassoc = true;
               }
             fig_program));
    (* The exact-solver series of Figure 11. *)
    Test.make ~name:"fig11/optimal-sp"
      (Staged.stage (fun () ->
           measure_once
             ~config:
               (config Simd.Policy.Optimal Simd.Driver.Software_pipelining)
             fig_program));
    (* Table 1: the S4*L8 int32 row's winning scheme. *)
    Test.make ~name:"table1/S4L8-dominant-pc"
      (Staged.stage (fun () ->
           measure_once
             ~config:
               (config Simd.Policy.Dominant Simd.Driver.Predictive_commoning)
             table1_program));
    (* Table 2: the S4*L4 int16 row. *)
    Test.make ~name:"table2/S4L4-int16-dominant-sp"
      (Staged.stage (fun () ->
           measure_once
             ~config:
               (config Simd.Policy.Dominant Simd.Driver.Software_pipelining)
             table2_program));
    (* Coverage: one full differential verification (scalar run + simdized
       run + whole-arena compare). *)
    Test.make ~name:"coverage/verify-one-loop"
      (Staged.stage (fun () ->
           match
             Simd.Measure.verify
               ~config:(config Simd.Policy.Lazy Simd.Driver.Software_pipelining)
               coverage_program
           with
           | Ok () -> ()
           | Error m -> failwith m));
    (* The simdizer alone (no simulation): compile-time cost. *)
    Test.make ~name:"simdize-only/S4L8"
      (Staged.stage (fun () ->
           ignore
             (Simd.Driver.simdize
                (config Simd.Policy.Dominant Simd.Driver.Software_pipelining)
                table1_program)));
    (* The exact solver alone on the widest statement shape. *)
    Test.make ~name:"simdize-only/S4L8-optimal"
      (Staged.stage (fun () ->
           ignore
             (Simd.Driver.simdize
                (config Simd.Policy.Optimal Simd.Driver.Software_pipelining)
                table1_program)));
  ]

let benchmark () : (string * float) list =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"experiments" tests)
  in
  List.concat_map
    (fun instance ->
      Hashtbl.fold
        (fun test_name result acc ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> (test_name, est) :: acc
          | Some _ | None -> acc)
        (Analyze.all ols instance raw) []
      |> List.sort compare)
    instances

let timings =
  if run_bench then begin
    Format.printf "=== Bechamel timings (monotonic clock) ===@.";
    let ts = benchmark () in
    List.iter
      (fun (test_name, est) ->
        Format.printf "%-40s %12.0f ns/run@." test_name est)
      ts;
    ts
  end
  else []

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

(* Static cost reports of the benchmark programs under every policy: what
   each placement decided and what it cost (the data behind the exact-
   solver series), each paired with the compact pass-pipeline trace
   summary (Simd.Trace) of that compilation — which passes ran, which
   changed the IR, and their operation-count deltas — and with the static
   verifier's verdict (Simd.Check): per-boundary violations (none, for a
   healthy compiler) and the proof obligations discharged — plus the
   simd-lint/1 report (Simd.Lint) of wasted or suspicious vector code.

   Each (program, policy) scheme's report is served from the artifact
   cache: the key covers library version, program source, and canonical
   config, so an unchanged scheme is never recompiled across bench runs.
   The cached payload remembers how long the cold compile took — the time
   a hit saves. *)
let compile_scheme program policy : Simd.Json.t option =
  let trace = Simd.Trace.create () in
  match
    Simd.Driver.simdize ~trace ~check:true
      (config policy Simd.Driver.Software_pipelining)
      program
  with
  | Simd.Driver.Simdized o ->
    Some
      (Simd.Json.Obj
         [
           ("report", Simd.Opt.Report.to_json (Simd.Driver.report o));
           ("trace", Simd.Trace.summary_to_json trace);
           ("lint", Simd.Lint.report_to_json (Simd.Lint.run o));
           ( "check",
             let violation_json (boundary, v) =
               let fields =
                 match Simd.Check.violation_to_json v with
                 | Simd.Json.Obj fields -> fields
                 | j -> [ ("violation", j) ]
               in
               Simd.Json.Obj
                 (("boundary", Simd.Json.String boundary) :: fields)
             in
             Simd.Json.Obj
               [
                 ( "violations",
                   Simd.Json.List
                     (List.map violation_json (Simd.Driver.check_violations o))
                 );
                 ("facts", Simd.Check.facts_to_json (Simd.Driver.check_facts o));
               ] );
         ])
  | Simd.Driver.Scalar _ -> None

type report_cache_stats = {
  mutable sr_hits : int;
  mutable sr_misses : int;
  mutable sr_saved_ms : float;
}

let report_cache = { sr_hits = 0; sr_misses = 0; sr_saved_ms = 0. }

(* Cold compiles wrap the document with their own elapsed time; a hit
   replays the document and books that time as saved. A scalar outcome is
   cached too (as null), so unvectorizable schemes are not re-attempted. *)
let compile_scheme_cached cas program policy : Simd.Json.t option =
  let key =
    Simd.Cas.key
      [
        "bench-static/1";
        Simd.Serve.Protocol.library_version;
        Simd.Serve.Protocol.config_canonical
          (config policy Simd.Driver.Software_pipelining);
        Simd.Pp.program_to_string program;
      ]
  in
  let unwrap doc =
    match
      (Simd.Json.member "elapsed_ms" doc, Simd.Json.member "doc" doc)
    with
    | Some (Simd.Json.Float ms), Some payload -> Some (ms, payload)
    | _ -> None
  in
  let hit =
    match Simd.Cas.find cas ~key with
    | None -> None
    | Some payload -> (
      match Simd.Json.of_string payload with
      | Ok doc -> unwrap doc
      | Error _ -> None)
  in
  match hit with
  | Some (ms, payload) ->
    report_cache.sr_hits <- report_cache.sr_hits + 1;
    report_cache.sr_saved_ms <- report_cache.sr_saved_ms +. ms;
    (match payload with Simd.Json.Null -> None | doc -> Some doc)
  | None ->
    report_cache.sr_misses <- report_cache.sr_misses + 1;
    let t0 = Unix.gettimeofday () in
    let result = compile_scheme program policy in
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let payload = Option.value ~default:Simd.Json.Null result in
    Simd.Cas.store cas ~key
      (Simd.Json.to_line
         (Simd.Json.Obj
            [
              ("elapsed_ms", Simd.Json.Float elapsed_ms); ("doc", payload);
            ]));
    result

let static_reports () : Simd.Json.t =
  let programs =
    [
      ("fig11_S1L6", fig_program);
      ("table1_S4L8", table1_program);
      ("table2_S4L4_int16", table2_program);
    ]
  in
  let compile =
    match cache_dir with
    | None -> compile_scheme
    | Some dir -> compile_scheme_cached (Simd.Cas.create ~dir ())
  in
  let doc =
    Simd.Json.Obj
      (List.map
         (fun (label, program) ->
           ( label,
             Simd.Json.Obj
               (List.filter_map
                  (fun policy ->
                    compile program policy
                    |> Option.map (fun d -> (Simd.Policy.name policy, d)))
                  Simd.Policy.all) ))
         programs)
  in
  if cache_dir <> None then
    Format.eprintf
      "static reports: %d schemes from cache (%.0f ms of compilation \
       saved), %d compiled cold@."
      report_cache.sr_hits report_cache.sr_saved_ms report_cache.sr_misses;
  doc

(* ------------------------------------------------------------------ *)
(* The backend matrix: one placement per program, retargeted to every
   registry backend's native V, probed, simulated, and priced           *)
(* ------------------------------------------------------------------ *)

let backends_json () : Simd.Json.t =
  let cc = Simd.Cc.find () in
  let probe =
    Simd.Json.List
      (List.map
         (fun b ->
           let support =
             match cc with
             | None -> Simd.Backend.Unsupported "no C compiler found"
             | Some cc -> Simd.Backend.probe ~cc b
           in
           Simd.Backend.to_json b support)
         Simd.Backend.all)
  in
  let row_json program (row : Simd.Matrix.row) =
    let base =
      match Simd.Matrix.row_to_json row with
      | Simd.Json.Obj fields -> fields
      | j -> [ ("row", j) ]
    in
    let perf =
      match row.Simd.Matrix.retarget with
      | Error _ -> []
      | Ok t -> (
        let trip =
          match program.Simd.Ast.loop.Simd.Ast.trip with
          | Simd.Ast.Trip_const _ -> None
          | Simd.Ast.Trip_param _ -> Some 200
        in
        match
          Simd.Measure.of_outcome ?trip program t.Simd.Retarget.outcome
        with
        | sample ->
          [
            ("opd", Simd.Json.Float (Simd.Measure.opd sample));
            ("speedup", Simd.Json.Float (Simd.Measure.speedup sample));
          ]
        | exception e ->
          [ ("sim_error", Simd.Json.String (Printexc.to_string e)) ])
    in
    Simd.Json.Obj (base @ perf)
  in
  let program_json (label, program) =
    match
      Simd.Driver.simdize ~check:true
        (config Simd.Policy.Dominant Simd.Driver.Software_pipelining)
        program
    with
    | Simd.Driver.Scalar r ->
      ( label,
        Simd.Json.Obj
          [
            ( "scalar",
              Simd.Json.String (Format.asprintf "%a" Simd.Driver.pp_reason r)
            );
          ] )
    | Simd.Driver.Simdized o ->
      ( label,
        Simd.Json.List (List.map (row_json program) (Simd.Matrix.rows ?cc o))
      )
  in
  Simd.Json.Obj
    [
      ( "cc",
        match cc with
        | Some c -> Simd.Json.String (Simd.Cc.id c)
        | None -> Simd.Json.Null );
      ("probe", probe);
      ( "programs",
        Simd.Json.Obj
          (List.map program_json
             [
               ("fig11_S1L6", fig_program);
               ("table1_S4L8", table1_program);
               ("table2_S4L4_int16", table2_program);
             ]) );
    ]

let () =
  match json_path with
  | None -> ()
  | Some path ->
    (* Bind first: report_cache must be populated before it is rendered
       (list-element evaluation order is unspecified). *)
    let reports = static_reports () in
    let doc =
      Simd.Json.Obj
        [
          ("loops", Simd.Json.Int loops);
          ("fig11", Simd.Suite.opd_figure_to_json fig11);
          ("fig12", Simd.Suite.opd_figure_to_json fig12);
          ("table1", Simd.Suite.speedup_table_to_json table1);
          ("table2", Simd.Suite.speedup_table_to_json table2);
          ("coverage", Simd.Suite.coverage_to_json cov);
          ("static_reports", reports);
          ("backends", backends_json ());
          ( "static_reports_cache",
            if cache_dir = None then Simd.Json.Null
            else
              Simd.Json.Obj
                [
                  ("hits", Simd.Json.Int report_cache.sr_hits);
                  ("misses", Simd.Json.Int report_cache.sr_misses);
                  ("saved_ms", Simd.Json.Float report_cache.sr_saved_ms);
                ] );
          ( "timings_ns_per_run",
            Simd.Json.Obj
              (List.map (fun (n, e) -> (n, Simd.Json.Float e)) timings) );
        ]
    in
    Simd.Json.to_file ~indent:2 path doc;
    Format.printf "wrote %s@." path
