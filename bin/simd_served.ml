(* simd_served — the long-lived batched compile server.

   Speaks the newline-delimited JSON protocol of docs/SERVER.md
   (simd-serve/1): each request line is a .simd source × driver config ×
   output selection; each response line carries the chosen-policy C/VIR,
   the static cost report, and the static-verifier verdict. Responses are
   byte-deterministic for identical requests — across runs, batch sizes,
   --jobs values, and cache state.

   Default mode serves stdin/stdout (pipe mode: one client, e.g. behind
   inetd or a supervisor); --socket PATH binds a Unix-domain socket and
   serves any number of concurrent clients (select-multiplexed, batching
   and fault isolation per connection) until a client sends
   {"op":"shutdown"}.

   --cache DIR attaches the content-addressed artifact cache (keyed on
   library version × config × emit selection × source; LRU-bounded with
   --cache-entries). --jobs N >= 2 compiles cache misses in forked pool
   workers with a per-request --timeout, so a pathological program
   crashes its worker, earns an error response, and cannot take down the
   service. Telemetry: {"op":"stats"} in-band, or --stats-json PATH to
   dump a final snapshot on exit. *)

open Cmdliner
module Serve = Simd.Serve

let run socket jobs cache_dir cache_entries timeout max_batch stats_json =
  (* A client vanishing mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let cache =
    match cache_dir with
    | None -> None
    | Some dir -> Some (Simd.Cas.create ?max_entries:cache_entries ~dir ())
  in
  let server = Serve.Server.create ~jobs ~timeout ~max_batch ?cache () in
  (match socket with
  | Some path ->
    Format.eprintf "simd_served: listening on %s (jobs=%d cache=%s)@." path
      jobs
      (Option.value ~default:"off" cache_dir);
    Serve.Server.listen_unix server ~path
  | None ->
    ignore (Serve.Server.serve_fd server Unix.stdin Unix.stdout));
  Option.iter
    (fun path ->
      Simd.Json.to_file ~indent:2 path (Serve.Server.telemetry server);
      Format.eprintf "simd_served: wrote %s@." path)
    stats_json;
  0

let cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket instead of serving \
             stdin/stdout. Concurrent clients are multiplexed with \
             per-connection batching and isolation; the server exits \
             when a client sends $(i,{\"op\":\"shutdown\"}).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Pool workers for cache misses. 1 compiles inline (fastest, \
             no isolation); N >= 2 forks workers with per-request crash \
             isolation and timeouts. Responses are byte-identical for \
             every N.")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed artifact cache directory (created if \
             missing; carries over between runs).")
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"LRU bound on cache entries (default: unbounded).")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request wall-clock budget in pooled mode; an expired \
             worker is killed and the request answered with an error. \
             0 disables.")
  in
  let max_batch =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Largest batch drained from the connection before \
             responding.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"PATH"
          ~doc:"Write a final telemetry snapshot (simd-serve/1) on exit.")
  in
  Cmd.v
    (Cmd.info "simd_served" ~version:"1.0"
       ~doc:
         "Long-lived batched compile server for the alignment-handling \
          simdizer")
    Term.(
      const run $ socket $ jobs $ cache $ cache_entries $ timeout $ max_batch
      $ stats_json)

let () = exit (Cmd.eval' cmd)
