(* fuzz — differential fuzzing front end.

   Default mode runs a seeded campaign: generate --budget random loop
   programs, check each one differentially (scalar interpreter vs. the
   simdized execution) under a randomly sampled driver configuration, and
   write a minimized reproducer for every divergence or crash into the
   output directory (corpus/fuzz/ by convention).

   --replay re-runs a committed reproducer file and reports its outcome;
   the exit code distinguishes pass/skip (0) from divergence/crash (1). *)

open Cmdliner
module Fuzz = Simd.Fuzz

let progress_interval = 100

let run_campaign seed budget out shrink shrink_steps quiet =
  let on_case index _case outcome =
    if (not quiet) && (index + 1) mod progress_interval = 0 then
      Format.eprintf "fuzz: %d/%d cases...@." (index + 1) budget;
    match (outcome : Fuzz.Oracle.outcome) with
    | Fuzz.Oracle.Divergence m | Fuzz.Oracle.Crash m ->
      Format.eprintf "fuzz: case %d %s: %s@." index
        (Fuzz.Oracle.outcome_name outcome)
        m
    | _ -> ()
  in
  let stats, failures =
    Fuzz.Campaign.run ~shrink ~shrink_steps ~on_case ~seed ~budget ()
  in
  Format.printf "%a@." Fuzz.Campaign.pp_stats stats;
  if failures <> [] then begin
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun (f : Fuzz.Campaign.failure) ->
        let path =
          Filename.concat out
            (Printf.sprintf "fuzz-seed%d-case%d.simd" seed f.Fuzz.Campaign.index)
        in
        Fuzz.Case.to_file path f.Fuzz.Campaign.minimized;
        Format.printf "case %d (%s) minimized to %s:@.%a@."
          f.Fuzz.Campaign.index
          (Fuzz.Oracle.outcome_name f.Fuzz.Campaign.outcome)
          path Fuzz.Case.pp f.Fuzz.Campaign.minimized;
        Option.iter
          (fun v ->
            Format.printf "first diverging pass: %a@." Fuzz.Bisect.pp_verdict v)
          f.Fuzz.Campaign.culprit)
      failures;
    1
  end
  else 0

let run_replay path =
  match Fuzz.Case.of_file path with
  | Error m ->
    Format.eprintf "replay: %s@." m;
    2
  | Ok case -> (
    Format.printf "replaying %s:@.%a@." path Fuzz.Case.pp case;
    match Fuzz.Oracle.run case with
    | Fuzz.Oracle.Pass ->
      Format.printf "outcome: pass@.";
      0
    | Fuzz.Oracle.Skipped m ->
      Format.printf "outcome: skipped (%s)@." m;
      0
    | outcome ->
      Format.printf "outcome: %a@." Fuzz.Oracle.pp_outcome outcome;
      Format.printf "first diverging pass: %a@." Fuzz.Bisect.pp_verdict
        (Fuzz.Bisect.run case);
      1)

let run seed budget replay out no_shrink shrink_steps quiet =
  match replay with
  | Some path -> run_replay path
  | None -> run_campaign seed budget out (not no_shrink) shrink_steps quiet

let cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (same seed, same cases).")
  in
  let budget =
    Arg.(
      value & opt int 500
      & info [ "budget" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one reproducer file instead of running a campaign.")
  in
  let out =
    Arg.(
      value & opt string "corpus/fuzz"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for minimized reproducers of new failures.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let shrink_steps =
    Arg.(
      value & opt int 1500
      & info [ "shrink-steps" ] ~docv:"N"
          ~doc:"Oracle-run budget per minimization.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~version:"1.0"
       ~doc:"Differential fuzzing of the simdizer against the scalar \
             interpreter")
    Term.(
      const run $ seed $ budget $ replay $ out $ no_shrink $ shrink_steps
      $ quiet)

let () = exit (Cmd.eval' cmd)
