(* fuzz — differential fuzzing front end.

   Default mode runs a seeded campaign: generate --budget random loop
   programs, check each one differentially (scalar interpreter vs. the
   simdized execution) under a randomly sampled driver configuration, and
   write a minimized reproducer for every divergence or crash into the
   output directory (corpus/fuzz/ by convention).

   --jobs N shards the campaign across N forked worker processes using the
   deterministic chunk plan (Simd.Fuzz.Campaign.plan): stdout, reproducer
   files, and the JSON report's result section are byte-identical for
   every N — only timing (stderr, and the report's "perf" section) varies.

   --native switches the oracle to the native-differential one: each case's
   portable-C self-checking harness is compiled with the discovered C
   compiler (cached by source hash) and executed, and its verdict is
   cross-checked against the simulator.

   --replay re-runs a committed reproducer file and reports its outcome;
   --replay-dir replays every .simd file in a directory. Both honor
   --native. The exit code distinguishes pass/skip (0) from
   divergence/crash (1). *)

open Cmdliner
module Fuzz = Simd.Fuzz
module Par = Simd.Par

let default_replay_trip = 203

(* ------------------------------------------------------------------ *)
(* Oracle selection                                                    *)
(* ------------------------------------------------------------------ *)

let make_oracle ~native ~cache =
  if not native then Ok Par.Campaign.Simulator
  else
    match Par.Native.create ~cache_dir:cache () with
    | Ok t -> Ok (Par.Campaign.Native t)
    | Error m -> Error m

let oracle_case_fn = function
  | Par.Campaign.Simulator -> Fuzz.Oracle.run
  | Par.Campaign.Native t -> Par.Native.check t
  | Par.Campaign.Custom f -> f

(* ------------------------------------------------------------------ *)
(* Campaign mode                                                       *)
(* ------------------------------------------------------------------ *)

let write_failures ~out ~seed failures =
  if failures <> [] && not (Sys.file_exists out) then Sys.mkdir out 0o755;
  List.map
    (fun (f : Fuzz.Campaign.failure) ->
      let path =
        Filename.concat out
          (Printf.sprintf "fuzz-seed%d-case%d.simd" seed f.Fuzz.Campaign.index)
      in
      Fuzz.Case.to_file path f.Fuzz.Campaign.minimized;
      (f, path))
    failures

(* Per-rule lint counters over a deterministic bounded sample of the
   campaign's case stream: the first [min budget 200] cases regenerated
   from [seed] (the sequential-campaign prefix), compiled under their
   sampled configs and linted. A pure function of [seed] and [budget],
   so reports stay byte-identical for fixed inputs. *)
let lint_json ~seed ~budget : Simd.Json.t =
  let sample = min budget 200 in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (r : Simd.Lint.rule) -> Hashtbl.replace totals r.Simd.Lint.name 0)
    Simd.Lint.rules;
  let simdized = ref 0 and scalar = ref 0 and findings = ref 0 in
  let prng = Simd.Prng.create ~seed in
  for _ = 1 to sample do
    let case = Fuzz.Genloop.gen_case prng in
    match
      Simd.Driver.simdize case.Fuzz.Case.config case.Fuzz.Case.program
    with
    | Simd.Driver.Scalar _ -> incr scalar
    | Simd.Driver.Simdized o ->
      incr simdized;
      let r = Simd.Lint.run o in
      findings := !findings + List.length r.Simd.Lint.findings;
      List.iter
        (fun (name, n) ->
          Hashtbl.replace totals name (Hashtbl.find totals name + n))
        r.Simd.Lint.counts
  done;
  Simd.Json.Obj
    [
      ("sample", Simd.Json.Int sample);
      ("simdized", Simd.Json.Int !simdized);
      ("scalar", Simd.Json.Int !scalar);
      ("findings", Simd.Json.Int !findings);
      ( "counts",
        Simd.Json.Obj
          (List.map
             (fun (r : Simd.Lint.rule) ->
               (r.Simd.Lint.name, Simd.Json.Int (Hashtbl.find totals r.Simd.Lint.name)))
             Simd.Lint.rules) );
    ]

let report_json ~seed ~budget ~jobs ~chunk_size ~oracle ~wall_s
    (r : Par.Campaign.result) (written : (Fuzz.Campaign.failure * string) list)
    : Simd.Json.t =
  let failure_json ((f : Fuzz.Campaign.failure), path) =
    Simd.Json.Obj
      ([
         ("index", Simd.Json.Int f.Fuzz.Campaign.index);
         ( "outcome",
           Simd.Json.String (Fuzz.Oracle.outcome_name f.Fuzz.Campaign.outcome)
         );
         ( "message",
           Simd.Json.String
             (Format.asprintf "%a" Fuzz.Oracle.pp_outcome f.Fuzz.Campaign.outcome)
         );
         ("file", Simd.Json.String path);
       ]
      @
      match f.Fuzz.Campaign.culprit with
      | None -> []
      | Some v ->
        [ ("first_diverging_pass", Simd.Json.String (Fuzz.Bisect.verdict_name v)) ])
  in
  let lost_json (l : Par.Campaign.lost_chunk) =
    Simd.Json.Obj
      [
        ("chunk", Simd.Json.Int l.Par.Campaign.chunk.Fuzz.Campaign.chunk_index);
        ("first_case", Simd.Json.Int l.Par.Campaign.chunk.Fuzz.Campaign.first);
        ("size", Simd.Json.Int l.Par.Campaign.chunk.Fuzz.Campaign.size);
        ("class", Simd.Json.String l.Par.Campaign.classification);
        ("detail", Simd.Json.String l.Par.Campaign.detail);
      ]
  in
  Simd.Json.Obj
    [
      ("schema", Simd.Json.String "simd-fuzz-report/1");
      ("seed", Simd.Json.Int seed);
      ("budget", Simd.Json.Int budget);
      ("jobs", Simd.Json.Int jobs);
      ("chunk_size", Simd.Json.Int chunk_size);
      ("oracle", Simd.Json.String (Par.Campaign.oracle_name oracle));
      ("stats", Fuzz.Campaign.stats_to_json r.Par.Campaign.stats);
      ("failures", Simd.Json.List (List.map failure_json written));
      ("lost_chunks", Simd.Json.List (List.map lost_json r.Par.Campaign.lost));
      ("lint", lint_json ~seed ~budget);
      (* Everything above is deterministic for fixed seed/budget/oracle;
         the perf section below is the only part that varies with --jobs
         and machine load. *)
      ( "perf",
        Simd.Json.Obj
          [
            ("wall_s", Simd.Json.Float wall_s);
            ( "cases_per_s",
              Simd.Json.Float
                (if wall_s > 0. then
                   float_of_int r.Par.Campaign.stats.Fuzz.Campaign.total /. wall_s
                 else 0.) );
            ("pool", Par.Pool.report_to_json r.Par.Campaign.pool);
            ( "cache",
              (* Counters are process-local (pooled workers count in their
                 own process); "entries" is read from disk, so it reflects
                 the whole campaign. *)
              match oracle with
              | Par.Campaign.Native t -> (
                let cas = Par.Native.cas t in
                match Simd.Cas.stats_to_json (Simd.Cas.stats cas) with
                | Simd.Json.Obj fields ->
                  Simd.Json.Obj
                    (fields
                    @ [ ("entries", Simd.Json.Int (Simd.Cas.entry_count cas)) ])
                | other -> other)
              | Par.Campaign.Simulator | Par.Campaign.Custom _ -> Simd.Json.Null
            );
          ] );
    ]

let run_campaign ~seed ~budget ~jobs ~chunk_size ~timeout ~out ~shrink
    ~shrink_steps ~quiet ~oracle ~json_path =
  let timeout = if timeout <= 0. then None else Some timeout in
  let on_chunk ~done_chunks ~total_chunks =
    if not quiet then
      Format.eprintf "fuzz: %d/%d chunks...@." done_chunks total_chunks
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Par.Campaign.run ~jobs ~chunk_size ?timeout ~shrink ~shrink_steps
      ~on_chunk ~oracle ~seed ~budget ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* Deterministic summary on stdout; timing on stderr. *)
  Format.printf "%a@." Fuzz.Campaign.pp_stats r.Par.Campaign.stats;
  if not quiet then
    Format.eprintf "fuzz: %d cases in %.2f s (%.0f cases/s): %a@."
      r.Par.Campaign.stats.Fuzz.Campaign.total wall_s
      (if wall_s > 0. then
         float_of_int r.Par.Campaign.stats.Fuzz.Campaign.total /. wall_s
       else 0.)
      Par.Pool.pp_report r.Par.Campaign.pool;
  let written = write_failures ~out ~seed r.Par.Campaign.failures in
  List.iter
    (fun ((f : Fuzz.Campaign.failure), path) ->
      Format.printf "case %d (%s) minimized to %s:@.%a@." f.Fuzz.Campaign.index
        (Fuzz.Oracle.outcome_name f.Fuzz.Campaign.outcome)
        path Fuzz.Case.pp f.Fuzz.Campaign.minimized;
      Option.iter
        (fun v ->
          Format.printf "first diverging pass: %a@." Fuzz.Bisect.pp_verdict v)
        f.Fuzz.Campaign.culprit)
    written;
  List.iter
    (fun (l : Par.Campaign.lost_chunk) ->
      Format.printf "chunk %d (cases %d..%d) lost: %s (%s)@."
        l.Par.Campaign.chunk.Fuzz.Campaign.chunk_index
        l.Par.Campaign.chunk.Fuzz.Campaign.first
        (l.Par.Campaign.chunk.Fuzz.Campaign.first
        + l.Par.Campaign.chunk.Fuzz.Campaign.size - 1)
        l.Par.Campaign.classification l.Par.Campaign.detail)
    r.Par.Campaign.lost;
  Option.iter
    (fun path ->
      Simd.Json.to_file ~indent:2 path
        (report_json ~seed ~budget ~jobs ~chunk_size ~oracle ~wall_s r written);
      if not quiet then Format.eprintf "fuzz: wrote %s@." path)
    json_path;
  if r.Par.Campaign.failures <> [] || not (Par.Campaign.completed r) then 1
  else 0

(* ------------------------------------------------------------------ *)
(* Replay modes                                                        *)
(* ------------------------------------------------------------------ *)

(* Corpus programs without a fuzz-trip header still need a concrete trip
   when their bound is a runtime parameter. *)
let with_default_trip (case : Fuzz.Case.t) =
  match (case.Fuzz.Case.program.Simd.Ast.loop.Simd.Ast.trip, case.Fuzz.Case.trip) with
  | Simd.Ast.Trip_param _, None ->
    { case with Fuzz.Case.trip = Some default_replay_trip }
  | _ -> case

let replay_one ~oracle ~verbose path =
  match Fuzz.Case.of_file path with
  | Error m ->
    Format.eprintf "replay: %s@." m;
    `Load_error
  | Ok case -> (
    let case = with_default_trip case in
    if verbose then Format.printf "replaying %s:@.%a@." path Fuzz.Case.pp case;
    match oracle_case_fn oracle case with
    | Fuzz.Oracle.Pass ->
      Format.printf "%s: pass@." path;
      `Pass
    | Fuzz.Oracle.Skipped m ->
      Format.printf "%s: skipped (%s)@." path m;
      `Pass
    | outcome ->
      Format.printf "%s: %a@." path Fuzz.Oracle.pp_outcome outcome;
      (match oracle with
      | Par.Campaign.Simulator ->
        Format.printf "first diverging pass: %a@." Fuzz.Bisect.pp_verdict
          (Fuzz.Bisect.run case)
      | _ -> ());
      `Failure)

let run_replay ~oracle path =
  match replay_one ~oracle ~verbose:true path with
  | `Pass -> 0
  | `Failure -> 1
  | `Load_error -> 2

let run_replay_dir ~oracle dir =
  match Sys.readdir dir with
  | exception Sys_error m ->
    Format.eprintf "replay-dir: %s@." m;
    2
  | entries ->
    let files =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".simd")
      |> List.sort compare
      |> List.map (Filename.concat dir)
    in
    if files = [] then begin
      Format.eprintf "replay-dir: no .simd files in %s@." dir;
      2
    end
    else begin
      let failures = ref 0 and errors = ref 0 in
      List.iter
        (fun f ->
          match replay_one ~oracle ~verbose:false f with
          | `Pass -> ()
          | `Failure -> incr failures
          | `Load_error -> incr errors)
        files;
      Format.printf "%d files: %d failed, %d unreadable@." (List.length files)
        !failures !errors;
      if !failures > 0 then 1 else if !errors > 0 then 2 else 0
    end

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let run seed budget replay replay_dir out no_shrink shrink_steps quiet jobs
    chunk_size timeout native cache json_path =
  match make_oracle ~native ~cache with
  | Error m ->
    Format.eprintf "fuzz: %s@." m;
    2
  | Ok oracle -> (
    match (replay, replay_dir) with
    | Some path, _ -> run_replay ~oracle path
    | None, Some dir -> run_replay_dir ~oracle dir
    | None, None ->
      run_campaign ~seed ~budget ~jobs ~chunk_size ~timeout ~out
        ~shrink:(not no_shrink) ~shrink_steps ~quiet ~oracle ~json_path)

let cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (same seed, same cases).")
  in
  let budget =
    Arg.(
      value & opt int 500
      & info [ "budget" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one reproducer file instead of running a campaign.")
  in
  let replay_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay-dir" ] ~docv:"DIR"
          ~doc:
            "Replay every .simd file in a directory (with $(b,--native): \
             the whole directory through the native oracle).")
  in
  let out =
    Arg.(
      value & opt string "corpus/fuzz"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for minimized reproducers of new failures.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let shrink_steps =
    Arg.(
      value & opt int 1500
      & info [ "shrink-steps" ] ~docv:"N"
          ~doc:"Oracle-run budget per minimization.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker processes. Results are byte-identical for every N \
             (deterministic chunked sharding); only wall clock changes.")
  in
  let chunk_size =
    Arg.(
      value
      & opt int Fuzz.Campaign.default_chunk_size
      & info [ "chunk-size" ] ~docv:"N"
          ~doc:
            "Cases per chunk (the unit of work and of PRNG stream \
             splitting). Changing it changes the generated cases.")
  in
  let timeout =
    Arg.(
      value & opt float 300.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-chunk wall-clock budget; an expired worker is killed and \
             the chunk classified. 0 disables the timeout.")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Cross-check every case against the compiled portable-C \
             harness (native differential oracle); requires a C compiler.")
  in
  let cache =
    Arg.(
      value & opt string "_harness_cache"
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Compiled-harness cache for $(b,--native), keyed by source hash.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-json" ] ~docv:"PATH"
          ~doc:
            "Write the machine-readable campaign report \
             (simd-fuzz-report/1) to PATH.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~version:"1.0"
       ~doc:"Differential fuzzing of the simdizer against the scalar \
             interpreter")
    Term.(
      const run $ seed $ budget $ replay $ replay_dir $ out $ no_shrink
      $ shrink_steps $ quiet $ jobs $ chunk_size $ timeout $ native $ cache
      $ json_path)

let () = exit (Cmd.eval' cmd)
