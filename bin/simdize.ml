(* simdize — command-line front end to the alignment-handling simdizer.

   Reads a loop program, simdizes it under the selected policy and
   optimizations, and prints the vector IR, emits C, simulates, and/or
   differentially verifies the result. *)

open Cmdliner

let read_input = function
  | "-" ->
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf stdin 4096
       done
     with End_of_file -> ());
    Buffer.contents buf
  | path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let policy_conv =
  let parse s =
    match Simd.Policy.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Simd.Policy.name p))

let reuse_conv =
  let parse = function
    | "plain" | "none" -> Ok Simd.Driver.No_reuse
    | "pc" -> Ok Simd.Driver.Predictive_commoning
    | "sp" -> Ok Simd.Driver.Software_pipelining
    | s -> Error (`Msg (Printf.sprintf "unknown reuse strategy %S" s))
  in
  Arg.conv
    (parse, fun fmt r -> Format.pp_print_string fmt (Simd.Driver.reuse_name r))

let emit_conv =
  let parse = function
    | "vir" -> Ok `Vir
    | "c" | "portable" -> Ok `Portable
    | "altivec" -> Ok `Altivec
    | "sse" -> Ok `Sse
    | "avx2" -> Ok `Avx2
    | "neon" -> Ok `Neon
    | "graph" -> Ok `Graph
    | s -> Error (`Msg (Printf.sprintf "unknown output kind %S" s))
  in
  Arg.conv
    ( parse,
      fun fmt k ->
        Format.pp_print_string fmt
          (match k with
          | `Vir -> "vir"
          | `Portable -> "c"
          | `Altivec -> "altivec"
          | `Sse -> "sse"
          | `Avx2 -> "avx2"
          | `Neon -> "neon"
          | `Graph -> "graph") )

let trace_conv =
  let parse = function
    | "human" -> Ok `Human
    | "json" -> Ok `Json
    | s -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))
  in
  Arg.conv
    ( parse,
      fun fmt k ->
        Format.pp_print_string fmt
          (match k with `Human -> "human" | `Json -> "json") )

let check_conv =
  let parse = function
    | "on" | "basic" -> Ok `On
    | "strict" -> Ok `Strict
    | s -> Error (`Msg (Printf.sprintf "unknown check mode %S" s))
  in
  Arg.conv
    ( parse,
      fun fmt k ->
        Format.pp_print_string fmt
          (match k with `On -> "on" | `Strict -> "strict") )

let severity_count sev violations =
  List.length
    (List.filter
       (fun (_, (v : Simd.Check.violation)) -> v.Simd.Check.severity = sev)
       violations)

(* Unified exit codes, shared with simdlint.exe (see docs/LINT.md):
   0 = clean, 1 = warning-only findings under a strict mode, 2 = errors
   (static-verifier or lint errors, parse failures, scalar fallback,
   verification failures). *)
let run file policy reuse memnorm reassoc peel unroll cleanup vector_len emit
    stats simulate verify trip trace_fmt check_mode lint_mode =
  let src = read_input file in
  match Simd.parse src with
  | Error msg ->
    Format.eprintf "%s@." msg;
    2
  | Ok program -> (
    let machine = Simd.Machine.create ~vector_len in
    let config =
      {
        Simd.Driver.default with
        Simd.Driver.machine;
        policy;
        reuse;
        memnorm;
        reassoc;
        unroll;
        peel_baseline = peel;
        cleanup;
      }
    in
    let trace =
      match trace_fmt with
      | None -> Simd.Trace.none
      | Some _ -> Simd.Trace.create ()
    in
    let print_trace () =
      match trace_fmt with
      | None -> ()
      | Some `Human -> print_string (Simd.Trace.to_string trace)
      | Some `Json ->
        print_endline (Simd.Json.to_string ~indent:2 (Simd.Trace.to_json trace))
    in
    match
      Simd.Driver.simdize ~trace ~check:(check_mode <> None) config program
    with
    | Simd.Driver.Scalar reason ->
      print_trace ();
      Format.eprintf "left scalar: %a@." Simd.Driver.pp_reason reason;
      2
    | Simd.Driver.Simdized o ->
      print_trace ();
      let code = ref 0 in
      let worst n = if n > !code then code := n in
      (match check_mode with
      | None -> ()
      | Some mode ->
        let violations = Simd.Driver.check_violations o in
        let facts = Simd.Driver.check_facts o in
        let errors = severity_count Simd.Check.Error violations in
        let warnings = severity_count Simd.Check.Warning violations in
        List.iter
          (fun (boundary, v) ->
            Format.eprintf "check: at %s: %a@." boundary
              Simd.Check.pp_violation v)
          violations;
        if errors > 0 then begin
          Format.eprintf
            "check FAILED: %d error%s (first at pass boundary %s)@." errors
            (if errors = 1 then "" else "s")
            (fst
               (List.hd
                  (List.filter
                     (fun (_, (v : Simd.Check.violation)) ->
                       v.Simd.Check.severity = Simd.Check.Error)
                     violations)));
          worst 2
        end
        else begin
          if mode = `Strict && warnings > 0 then begin
            Format.eprintf
              "check: %d warning%s escalated by strict mode@." warnings
              (if warnings = 1 then "" else "s");
            worst 1
          end;
          Format.printf
            "// check: OK (%d op, %d store, %d shift, %d seam obligations \
             proved across %d boundaries%s)@."
            facts.Simd.Check.ops_proved facts.Simd.Check.stores_proved
            facts.Simd.Check.shifts_proved facts.Simd.Check.seams_proved
            (List.length o.Simd.Driver.checks)
            (match warnings with
            | 0 -> ""
            | n -> Printf.sprintf "; %d lint warning%s" n
                     (if n = 1 then "" else "s"))
        end);
      (match lint_mode with
      | None -> ()
      | Some mode ->
        let r = Simd.Lint.run o in
        List.iter
          (fun f -> Format.eprintf "lint: %a@." Simd.Lint.pp_finding f)
          r.Simd.Lint.findings;
        if Simd.Lint.clean r then
          Format.printf "// lint: clean (%d rules)@."
            (List.length Simd.Lint.rules)
        else
          Format.eprintf "lint: %d error%s, %d warning%s@." r.Simd.Lint.errors
            (if r.Simd.Lint.errors = 1 then "" else "s")
            r.Simd.Lint.warnings
            (if r.Simd.Lint.warnings = 1 then "" else "s");
        worst (Simd.Lint.exit_code ~strict:(mode = `Strict) r));
      (match emit with
      | `Vir -> print_string (Simd.Vir_prog.to_string o.Simd.Driver.prog)
      | `Graph ->
        List.iter
          (fun (_, g) -> Format.printf "%a@." Simd.Graph.pp g)
          o.Simd.Driver.graphs
      | (`Portable | `Altivec | `Sse | `Avx2 | `Neon) as kind ->
        let backend =
          match kind with
          | `Portable -> Simd.Backend.Portable
          | `Altivec -> Simd.Backend.Altivec
          | `Sse -> Simd.Backend.Sse
          | `Avx2 -> Simd.Backend.Avx2
          | `Neon -> Simd.Backend.Neon
        in
        if Simd.Backend.supports_vl backend vector_len then
          print_string (Simd.Backend.unit_for backend o.Simd.Driver.prog)
        else begin
          Format.eprintf
            "emit %s: backend requires V = %d, compiled at V = %d (try -V \
             %d, or retarget with bin/backends.exe)@."
            (Simd.Backend.name backend)
            (Simd.Backend.default_vl backend)
            vector_len
            (Simd.Backend.default_vl backend);
          worst 2
        end);
      if stats then
        print_endline
          (Simd.Opt.Report.to_string ~indent:2 (Simd.Driver.report o));
      if simulate then begin
        match Simd.measure ~config ?trip program with
        | sample, opd, speedup ->
          Format.printf "// counts: %s@." (Simd.Exec.show_counts sample.Simd.Measure.counts);
          Format.printf "// operations per datum: %.3f (LB %.3f, SEQ %.3f)@." opd
            (Simd.Lb.opd sample.Simd.Measure.lb)
            (Simd.Lb.seq_opd ~analysis:o.Simd.Driver.analysis);
          Format.printf "// speedup vs ideal scalar: %.2fx@." speedup
        | exception Simd.Measure.Not_simdized m -> Format.eprintf "simulate: %s@." m
      end;
      if verify then begin
        match Simd.verify ~config ?trip program with
        | Ok () -> Format.printf "// verify: OK (simdized == scalar)@."
        | Error m ->
          Format.eprintf "verify FAILED: %s@." m;
          worst 2
      end;
      !code)

let cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Loop program to simdize ('-' for stdin).")
  in
  let policy =
    (* help text derives from the one registration list, so a new policy
       can't be missing from it *)
    let doc =
      "Shift placement policy: "
      ^ String.concat "; "
          (List.map
             (fun (p, name, aliases, descr) ->
               ignore p;
               let a =
                 match aliases with
                 | [] -> ""
                 | a -> " (" ^ String.concat ", " a ^ ")"
               in
               Printf.sprintf "$(b,%s)%s — %s" name a descr)
             Simd.Policy.registry)
      ^ "."
    in
    Arg.(
      value
      & opt policy_conv Simd.Policy.Dominant
      & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let reuse =
    Arg.(
      value
      & opt reuse_conv Simd.Driver.Software_pipelining
      & info [ "r"; "reuse" ] ~docv:"REUSE"
          ~doc:"Cross-iteration reuse: plain, pc, sp.")
  in
  let memnorm =
    Arg.(value & opt bool true & info [ "memnorm" ] ~doc:"Memory normalization.")
  in
  let reassoc =
    Arg.(
      value & flag & info [ "reassoc" ] ~doc:"Common-offset reassociation.")
  in
  let peel =
    Arg.(
      value & flag
      & info [ "peel-baseline" ]
          ~doc:"Use the prior-work loop-peeling baseline (fails on mixed \
                alignments).")
  in
  let unroll =
    Arg.(
      value & opt int 1
      & info [ "u"; "unroll" ] ~docv:"FACTOR"
          ~doc:"Steady-loop unroll factor (removes pipelining copies).")
  in
  let cleanup =
    Arg.(
      value & flag
      & info [ "cleanup" ]
          ~doc:"Run the dataflow-backed VIR cleanup pass (copy propagation, \
                shift combining, invariant hoisting, dead-code elimination) \
                after placement; see docs/LINT.md.")
  in
  let vector_len =
    Arg.(
      value & opt int 16
      & info [ "V"; "vector-len" ] ~docv:"BYTES" ~doc:"Vector register length.")
  in
  let emit =
    Arg.(
      value & opt emit_conv `Vir
      & info [ "e"; "emit" ] ~docv:"KIND"
          ~doc:"Output: vir, graph, c (portable), altivec, sse, avx2, neon. \
                ISA backends require the matching vector length (avx2 \
                needs -V 32, the others -V 16); see docs/BACKENDS.md.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the static cost report (streams, chosen shifts, \
                operation counts, per-policy costs) as JSON.")
  in
  let simulate =
    Arg.(
      value & flag
      & info [ "s"; "simulate" ]
          ~doc:"Simulate and report dynamic counts, OPD and speedup.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Differentially verify against the scalar loop.")
  in
  let trip =
    Arg.(
      value
      & opt (some int) None
      & info [ "trip" ] ~docv:"N" ~doc:"Trip count for runtime-bound loops.")
  in
  let trace =
    Arg.(
      value
      & opt ~vopt:(Some `Human) (some trace_conv) None
      & info [ "trace" ] ~docv:"FORMAT"
          ~doc:"Print the pass-pipeline trace before the output: \
                reassociation, per-statement shift placement provenance, \
                and per-pass IR diffs with operation-count deltas. \
                $(docv) is $(b,human) (default) or $(b,json) \
                (schema simd-trace/1, see docs/TRACE.md); both are \
                deterministic (no timings).")
  in
  let check =
    Arg.(
      value
      & opt ~vopt:(Some `On) (some check_conv) None
      & info [ "check" ] ~docv:"MODE"
          ~doc:"Run the static verifier (Simd.Check) at every pass \
                boundary: alignment invariants (C.2)/(C.3), vshiftpair \
                adjacency, bound formulas (Eqs. 8-16), and the VIR \
                well-formedness lints. Violations are reported with the \
                pass boundary that introduced them; any error exits \
                nonzero. $(docv) is $(b,on) (default) or $(b,strict) \
                (escalates lint warnings such as dead shifts to errors). \
                See docs/CHECK.md. Exit codes are shared with --lint and \
                simdlint.exe: 2 on errors, 1 on warning-only findings \
                under strict, 0 when clean (docs/LINT.md).")
  in
  let lint =
    Arg.(
      value
      & opt ~vopt:(Some `On) (some check_conv) None
      & info [ "lint" ] ~docv:"MODE"
          ~doc:"Run the registry-based linter (Simd.Lint) on the compiled \
                program: dead vector operations, redundant or cancelling \
                stream shifts, unused streams, write-before-read clobbers, \
                unhoisted loop-invariant operations, shift-amount range, \
                and lane-uniform store masks. $(docv) is $(b,on) (default) \
                or $(b,strict) (warnings affect the exit code). Exit codes \
                are shared with --check and simdlint.exe: 2 on errors, 1 \
                on warning-only findings under strict, 0 when clean \
                (docs/LINT.md).")
  in
  Cmd.v
    (Cmd.info "simdize" ~version:"1.0"
       ~doc:"Vectorize loops for SIMD architectures with alignment constraints")
    Term.(
      const run $ file $ policy $ reuse $ memnorm $ reassoc $ peel $ unroll
      $ cleanup $ vector_len $ emit $ stats $ simulate $ verify $ trip $ trace
      $ check $ lint)

let () = exit (Cmd.eval' cmd)
