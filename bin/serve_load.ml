(* serve_load — load generator and benchmark for the compile service.

   Replays a corpus of .simd programs through the server (each file ×
   each requested policy × each vector length), twice: a cold pass
   against an empty artifact cache and a cached pass over the identical
   request stream. Reports throughput and client-observed latency
   percentiles per pass, the cached-vs-cold speedup, the cache hit rate
   of the second pass, and a digest of the response stream — and asserts
   that both passes produced byte-identical responses (the protocol's
   determinism guarantee, measured, not assumed).

   Default mode forks a server child and talks to it over pipes, so the
   measurement includes the real protocol round trip; --socket PATH
   drives an externally started simd_served.exe instead.

   The JSON document (--json, conventionally BENCH_server.json) is the
   perf-trajectory artifact CI uploads; --min-hit-rate/--min-speedup turn
   the run into a regression gate. *)

open Cmdliner
module Serve = Simd.Serve
module Protocol = Serve.Protocol

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Request stream                                                      *)
(* ------------------------------------------------------------------ *)

let build_requests ~corpus ~policies ~vls ~repeat =
  let files =
    Sys.readdir corpus |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".simd")
    |> List.sort compare
    |> List.map (Filename.concat corpus)
  in
  if files = [] then failwith (Printf.sprintf "no .simd files in %s" corpus);
  let requests = ref [] in
  let n = ref 0 in
  for _ = 1 to repeat do
    List.iter
      (fun file ->
        let source = read_file file in
        List.iter
          (fun policy ->
            List.iter
              (fun vl ->
                incr n;
                let config =
                  {
                    Simd.Driver.default with
                    Simd.Driver.policy;
                    machine = Simd.Machine.create ~vector_len:vl;
                  }
                in
                requests :=
                  {
                    Protocol.id = Printf.sprintf "r%06d" !n;
                    source;
                    config;
                    emits = Protocol.default_emits;
                  }
                  :: !requests)
              vls)
          policies)
      files
  done;
  List.rev !requests

(* ------------------------------------------------------------------ *)
(* Transport: a connected (write fd, read fd) pair                     *)
(* ------------------------------------------------------------------ *)

type conn = {
  send_fd : Unix.file_descr;
  recv : in_channel;
  cleanup : unit -> unit;
}

let connect_socket path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  {
    send_fd = sock;
    recv = Unix.in_channel_of_descr sock;
    cleanup = (fun () -> try Unix.close sock with Unix.Unix_error _ -> ());
  }

(* Fork a server child bridged over two pipes: the default, self-
   contained transport — the measurement includes fork-free protocol
   round trips against a live server process. *)
let fork_server ~jobs ~timeout ~max_batch ~cache_dir ~cache_entries =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    let cache =
      Some (Simd.Cas.create ?max_entries:cache_entries ~dir:cache_dir ())
    in
    let server = Serve.Server.create ~jobs ~timeout ~max_batch ?cache () in
    ignore (Serve.Server.serve_fd server req_r resp_w);
    exit 0
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    {
      send_fd = req_w;
      recv = Unix.in_channel_of_descr resp_r;
      cleanup =
        (fun () ->
          (try Unix.close req_w with Unix.Unix_error _ -> ());
          (try close_in (Unix.in_channel_of_descr resp_r)
           with Sys_error _ -> ());
          ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0)));
    }

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* One request line out, one response line back. *)
let roundtrip conn line =
  write_all conn.send_fd (line ^ "\n");
  input_line conn.recv

(* ------------------------------------------------------------------ *)
(* A measured pass                                                     *)
(* ------------------------------------------------------------------ *)

type pass = {
  wall_s : float;
  throughput_rps : float;
  latencies_ms : float array;  (** sorted ascending *)
  responses : string list;  (** in request order *)
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

(* Pipelined window: send up to [concurrency] requests, then read their
   responses. Latency is per request, send-to-receive — what a client
   saw, pipelining included. *)
let run_pass conn ~concurrency (requests : Protocol.request list) : pass =
  let lines = List.map Protocol.request_to_line requests in
  let total = List.length lines in
  let latencies = Array.make total 0. in
  let responses = ref [] in
  let t0 = Unix.gettimeofday () in
  let rec window i = function
    | [] -> ()
    | pending ->
      let rec take n acc = function
        | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let batch, rest = take concurrency [] pending in
      let sent =
        List.map
          (fun line ->
            let t = Unix.gettimeofday () in
            write_all conn.send_fd (line ^ "\n");
            t)
          batch
      in
      List.iteri
        (fun j t_send ->
          let line = input_line conn.recv in
          latencies.(i + j) <- (Unix.gettimeofday () -. t_send) *. 1000.;
          responses := line :: !responses)
        sent;
      window (i + List.length batch) rest
  in
  window 0 lines;
  let wall_s = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  {
    wall_s;
    throughput_rps =
      (if wall_s > 0. then float_of_int total /. wall_s else 0.);
    latencies_ms = latencies;
    responses = List.rev !responses;
  }

let pass_to_json p =
  Simd.Json.Obj
    [
      ("wall_s", Simd.Json.Float p.wall_s);
      ("throughput_rps", Simd.Json.Float p.throughput_rps);
      ( "latency_ms",
        Simd.Json.Obj
          [
            ("p50", Simd.Json.Float (percentile p.latencies_ms 0.50));
            ("p90", Simd.Json.Float (percentile p.latencies_ms 0.90));
            ("p99", Simd.Json.Float (percentile p.latencies_ms 0.99));
            ( "max",
              Simd.Json.Float
                (match Array.length p.latencies_ms with
                | 0 -> 0.
                | n -> p.latencies_ms.(n - 1)) );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Server-side cache counters via {"op":"stats"}                       *)
(* ------------------------------------------------------------------ *)

let cache_counters conn =
  let line = roundtrip conn (Simd.Json.to_line (Simd.Json.Obj [ ("op", Simd.Json.String "stats") ])) in
  match Simd.Json.of_string line with
  | Error _ -> None
  | Ok doc -> (
    match Simd.Json.member "cache" doc with
    | Some (Simd.Json.Obj _ as cache) ->
      let get k =
        match Option.bind (Simd.Json.member k cache) Simd.Json.to_int_opt with
        | Some n -> n
        | None -> 0
      in
      Some (get "hits", get "misses", line)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let parse_policies s =
  String.split_on_char ',' s
  |> List.map (fun name ->
         match Simd.Policy.of_name (String.trim name) with
         | Some p -> p
         | None -> failwith (Printf.sprintf "unknown policy %S" name))

let parse_vls s =
  String.split_on_char ',' s |> List.map (fun v -> int_of_string (String.trim v))

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun f -> remove_tree (Filename.concat path f))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let run corpus policies vls repeat concurrency jobs timeout max_batch socket
    cache_dir cache_entries json_path min_hit_rate min_speedup quiet =
  try
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let requests =
      build_requests ~corpus ~policies:(parse_policies policies)
        ~vls:(parse_vls vls) ~repeat
    in
    let total = List.length requests in
    let own_cache = socket = None && cache_dir = None in
    let cache_dir =
      match cache_dir with
      | Some d -> d
      | None -> Printf.sprintf "_serve_cache.load.%d" (Unix.getpid ())
    in
    let conn =
      match socket with
      | Some path -> connect_socket path
      | None -> fork_server ~jobs ~timeout ~max_batch ~cache_dir ~cache_entries
    in
    Fun.protect
      ~finally:(fun () ->
        conn.cleanup ();
        if own_cache && Sys.file_exists cache_dir then remove_tree cache_dir)
      (fun () ->
        if not quiet then
          Format.eprintf
            "serve_load: %d requests (%d corpus files x policies x V), \
             concurrency %d, jobs %d@."
            total
            (total / repeat)
            concurrency jobs;
        let cold = run_pass conn ~concurrency requests in
        let after_cold = cache_counters conn in
        let cached = run_pass conn ~concurrency requests in
        let after_cached = cache_counters conn in
        let deterministic = cold.responses = cached.responses in
        let digest =
          Digest.to_hex (Digest.string (String.concat "\n" cold.responses))
        in
        let hit_rate =
          match (after_cold, after_cached) with
          | Some (h0, _, _), Some (h1, _, _) ->
            Some (float_of_int (h1 - h0) /. float_of_int (max 1 total))
          | _ -> None
        in
        let speedup =
          if cold.throughput_rps > 0. then
            cached.throughput_rps /. cold.throughput_rps
          else 0.
        in
        let ok_statuses =
          List.filter
            (fun r ->
              match Simd.Json.of_string r with
              | Ok doc -> (
                match
                  Option.bind (Simd.Json.member "status" doc)
                    Simd.Json.to_string_opt
                with
                | Some "ok" -> true
                | _ -> false)
              | Error _ -> false)
            cold.responses
        in
        Format.printf
          "serve_load: %d requests/pass (%d simdized ok)@.  cold:   %8.0f \
           req/s  p50 %6.3f ms  p99 %6.3f ms@.  cached: %8.0f req/s  p50 \
           %6.3f ms  p99 %6.3f ms@.  speedup %.1fx  hit-rate %s  \
           deterministic %b  digest %s@."
          total
          (List.length ok_statuses)
          cold.throughput_rps
          (percentile cold.latencies_ms 0.50)
          (percentile cold.latencies_ms 0.99)
          cached.throughput_rps
          (percentile cached.latencies_ms 0.50)
          (percentile cached.latencies_ms 0.99)
          speedup
          (match hit_rate with
          | Some r -> Printf.sprintf "%.1f%%" (100. *. r)
          | None -> "n/a")
          deterministic digest;
        Option.iter
          (fun path ->
            let doc =
              Simd.Json.Obj
                [
                  ("schema", Simd.Json.String "simd-serve-bench/1");
                  ("corpus", Simd.Json.String corpus);
                  ("requests_per_pass", Simd.Json.Int total);
                  ("concurrency", Simd.Json.Int concurrency);
                  ("jobs", Simd.Json.Int jobs);
                  ("cold", pass_to_json cold);
                  ("cached", pass_to_json cached);
                  ("speedup_cached_vs_cold", Simd.Json.Float speedup);
                  ( "second_pass_hit_rate",
                    match hit_rate with
                    | Some r -> Simd.Json.Float r
                    | None -> Simd.Json.Null );
                  ("deterministic", Simd.Json.Bool deterministic);
                  ("responses_md5", Simd.Json.String digest);
                  ( "server_stats",
                    match after_cached with
                    | Some (_, _, line) -> (
                      match Simd.Json.of_string line with
                      | Ok doc -> doc
                      | Error _ -> Simd.Json.Null)
                    | None -> Simd.Json.Null );
                ]
            in
            Simd.Json.to_file ~indent:2 path doc;
            if not quiet then Format.eprintf "serve_load: wrote %s@." path)
          json_path;
        let failures = ref [] in
        if not deterministic then
          failures := "responses differ between passes" :: !failures;
        (match (min_hit_rate, hit_rate) with
        | Some want, Some got when got < want ->
          failures :=
            Printf.sprintf "hit rate %.2f below required %.2f" got want
            :: !failures
        | Some _, None ->
          failures := "hit rate unavailable (no cache attached)" :: !failures
        | _ -> ());
        (match min_speedup with
        | Some want when speedup < want ->
          failures :=
            Printf.sprintf "cached/cold speedup %.1fx below required %.1fx"
              speedup want
            :: !failures
        | _ -> ());
        List.iter (fun m -> Format.eprintf "serve_load: FAIL: %s@." m) !failures;
        if !failures <> [] then 1 else 0)
  with Failure m ->
    Format.eprintf "serve_load: %s@." m;
    2

let cmd =
  let corpus =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory of .simd programs.")
  in
  let policies =
    Arg.(
      value
      & opt string "dominant,optimal,joint"
      & info [ "policies" ] ~docv:"LIST"
          ~doc:"Comma-separated placement policies to request per program.")
  in
  let vls =
    Arg.(
      value & opt string "16"
      & info [ "vl" ] ~docv:"LIST"
          ~doc:"Comma-separated vector lengths to request per program.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Replays of the whole request set per pass.")
  in
  let concurrency =
    Arg.(
      value & opt int 32
      & info [ "c"; "concurrency" ] ~docv:"N"
          ~doc:"In-flight requests (pipelining window).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Pool workers in the forked server (1 = inline).")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request budget (pooled).")
  in
  let max_batch =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"N" ~doc:"Server-side batch bound.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Drive an externally started simd_served.exe over its \
             Unix-domain socket instead of forking a server.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Artifact cache for the forked server (default: a fresh \
             per-run directory, removed afterwards — so the first pass \
             is genuinely cold).")
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N" ~doc:"LRU bound on cache entries.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the benchmark document (simd-serve-bench/1) to PATH.")
  in
  let min_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-hit-rate" ] ~docv:"FRACTION"
          ~doc:"Fail unless the second pass hit rate reaches this.")
  in
  let min_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Fail unless cached/cold throughput reaches this factor.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "serve_load" ~version:"1.0"
       ~doc:"Load generator and benchmark for the batched compile service")
    Term.(
      const run $ corpus $ policies $ vls $ repeat $ concurrency $ jobs
      $ timeout $ max_batch $ socket $ cache_dir $ cache_entries $ json_path
      $ min_hit_rate $ min_speedup $ quiet)

let () = exit (Cmd.eval' cmd)
