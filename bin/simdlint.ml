(* simdlint — standalone lint front end.

   Compiles a loop program (honoring any fuzz-reproducer config header)
   and runs the Simd.Lint registry over the result. Exit codes are the
   unified scheme of docs/LINT.md, shared with simdize --check/--lint:
   2 on any error-severity finding (or a failed compilation), 1 on
   warning-only findings under --strict, 0 when clean. *)

open Cmdliner

let read_input = function
  | "-" ->
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf stdin 4096
       done
     with End_of_file -> ());
    Buffer.contents buf
  | path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let policy_conv =
  let parse s =
    match Simd.Policy.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Simd.Policy.name p))

let list_rules () =
  List.iter
    (fun (r : Simd.Lint.rule) ->
      Format.printf "%-16s %-7s %s@." r.Simd.Lint.name
        (Simd.Check.severity_name r.Simd.Lint.severity)
        r.Simd.Lint.doc)
    Simd.Lint.rules;
  0

let run file policy vector_len cleanup strict json rules =
  if rules then list_rules ()
  else
    let src = read_input file in
    (* Reproducer headers carry a full driver config; honor it, then let
       explicit flags override the pieces the lint caller cares about. *)
    match Simd.Fuzz.Case.of_string src with
    | Error msg ->
      Format.eprintf "%s@." msg;
      2
    | Ok case -> (
      let config = case.Simd.Fuzz.Case.config in
      let config =
        match policy with
        | Some p -> { config with Simd.Driver.policy = p }
        | None -> config
      in
      let config =
        match vector_len with
        | Some v ->
          { config with Simd.Driver.machine = Simd.Machine.create ~vector_len:v }
        | None -> config
      in
      let config = { config with Simd.Driver.cleanup } in
      match Simd.Driver.simdize config case.Simd.Fuzz.Case.program with
      | Simd.Driver.Scalar reason ->
        Format.eprintf "left scalar: %a@." Simd.Driver.pp_reason reason;
        2
      | Simd.Driver.Simdized o ->
        let r = Simd.Lint.run o in
        if json then
          print_endline
            (Simd.Json.to_string ~indent:2 (Simd.Lint.report_to_json r))
        else begin
          List.iter
            (fun f -> Format.printf "%a@." Simd.Lint.pp_finding f)
            r.Simd.Lint.findings;
          if Simd.Lint.clean r then Format.printf "clean@."
          else
            Format.printf "%d error%s, %d warning%s@." r.Simd.Lint.errors
              (if r.Simd.Lint.errors = 1 then "" else "s")
              r.Simd.Lint.warnings
              (if r.Simd.Lint.warnings = 1 then "" else "s")
        end;
        Simd.Lint.exit_code ~strict r)

let cmd =
  let file =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:"Loop program to lint ('-' for stdin). Fuzz-reproducer \
                config headers (// fuzz-config: ...) are honored.")
  in
  let policy =
    Arg.(
      value
      & opt (some policy_conv) None
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Shift placement policy (default: the header's, else the \
                driver default).")
  in
  let vector_len =
    Arg.(
      value
      & opt (some int) None
      & info [ "V"; "vector-len" ] ~docv:"BYTES"
          ~doc:"Vector register length (default: the header's, else 16).")
  in
  let cleanup =
    Arg.(
      value & flag
      & info [ "cleanup" ]
          ~doc:"Run the vir_cleanup pass before linting; the \
                evidence-backed rules then lint clean by construction.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Warning-only findings exit 1 instead of 0 (errors always \
                exit 2).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the simd-lint/1 JSON report instead of text.")
  in
  let rules =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"List the lint rule registry and exit.")
  in
  Cmd.v
    (Cmd.info "simdlint" ~version:"1.0"
       ~doc:"Lint simdized programs for wasted or suspicious vector code")
    Term.(
      const run $ file $ policy $ vector_len $ cleanup $ strict $ json $ rules)

let () = exit (Cmd.eval' cmd)
