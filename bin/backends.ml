(* backends — the multi-ISA backend matrix, from the command line.

   Compiles each input program once (one placement at the source V),
   retargets the placed compilation to every registry backend's native
   vector length (Simd.Retarget — placement is NOT rerun), probes what
   the build machine can do with each backend, and reports the joined
   matrix: support classification, retarget statuses, verifier verdict,
   simulator agreement, and measured OPD/speedup at each V'.

   Modes:
     backends FILE...            human-readable matrix (default)
     backends --probe            capability probe only (no programs)
     backends --doc-md FILE...   deterministic markdown for gen_docs.sh
                                 (registry facts + retarget matrix; no
                                 compiler probe, so the output is
                                 machine-independent)
     backends --json PATH ...    also write the BENCH_backends.json
                                 document CI uploads. *)

open Cmdliner

let policy_conv =
  let parse s =
    match Simd.Policy.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Simd.Policy.name p))

let read_program path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Simd.parse src

(* ------------------------------------------------------------------ *)
(* Measurement of a retargeted compilation                             *)
(* ------------------------------------------------------------------ *)

(* Simulate the retargeted program (not a fresh compilation at V'): the
   numbers answer for exactly the code the retarget produced. *)
let measure_retargeted ~trip program (t : Simd.Retarget.t) =
  let o = t.Simd.Retarget.outcome in
  let config = o.Simd.Driver.config in
  let trip =
    match program.Simd.Ast.loop.Simd.Ast.trip with
    | Simd.Ast.Trip_const _ -> None
    | Simd.Ast.Trip_param _ -> Some trip
  in
  let setup =
    Simd.Sim_run.prepare ?trip ~machine:config.Simd.Driver.machine program
  in
  let verified =
    match Simd.Sim_run.verify setup o.Simd.Driver.prog with
    | Ok () -> Ok ()
    | Error m -> Error (Format.asprintf "%a" Simd.Sim_run.pp_mismatch m)
  in
  let sample = Simd.Measure.of_outcome ?trip program o in
  (verified, Simd.Measure.opd sample, Simd.Measure.speedup sample)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let status_cell (row : Simd.Matrix.row) =
  match row.Simd.Matrix.retarget with
  | Error reason -> Format.asprintf "-- (%a)" Simd.Driver.pp_reason reason
  | Ok t ->
    let p, r, f = Simd.Retarget.counts t in
    let errors = List.length (Simd.Retarget.error_violations t) in
    Printf.sprintf "%dP/%dR/%dX %s" p r f
      (if errors = 0 then "check:ok" else Printf.sprintf "check:%dERR" errors)

let print_probe ?cc () =
  Format.printf "backend capability probe (%s):@."
    (match cc with Some c -> Simd.Cc.id c | None -> "no C compiler found");
  List.iter
    (fun b ->
      let support =
        match cc with
        | None -> Simd.Backend.Unsupported "no C compiler found"
        | Some cc -> Simd.Backend.probe ~cc b
      in
      Format.printf "  %-9s V=%-3s %-12s %a@." (Simd.Backend.name b)
        (match Simd.Backend.native_vl b with
        | Some v -> string_of_int v
        | None -> "any")
        (String.concat " " (Simd.Backend.cflags b))
        Simd.Backend.pp_support support)
    Simd.Backend.all

let print_matrix ~measure ~trip file program (rows : Simd.Matrix.row list) =
  Format.printf "@.%s:@." file;
  Format.printf "  %-9s %-4s %-15s %-26s %-10s %s@." "backend" "V'" "support"
    "retarget (P/R/X)" "verify" "opd / speedup";
  List.iter
    (fun (row : Simd.Matrix.row) ->
      let verify_cell, perf =
        match row.Simd.Matrix.retarget with
        | Error _ -> ("--", "--")
        | Ok _ when not measure -> ("--", "(skipped)")
        | Ok t -> (
          match measure_retargeted ~trip program t with
          | Ok (), opd, speedup ->
            ("agrees", Printf.sprintf "%.3f / %.2fx" opd speedup)
          | Error m, _, _ -> ("FAIL", m)
          | exception e -> ("ERROR", Printexc.to_string e))
      in
      Format.printf "  %-9s %-4d %-15s %-26s %-10s %s@."
        (Simd.Backend.name row.Simd.Matrix.backend)
        row.Simd.Matrix.vl
        (Simd.Backend.support_name row.Simd.Matrix.support)
        (status_cell row) verify_cell perf)
    rows

(* ------------------------------------------------------------------ *)
(* Deterministic markdown (gen_docs.sh)                                *)
(* ------------------------------------------------------------------ *)

(* No probing here: the table must be byte-identical on every machine, so
   it carries only registry facts and retarget results (pure functions of
   the input program). Probe output is machine-specific by design — see
   --probe. *)
let print_doc_md files policy vl =
  Format.printf
    "| backend | description | native V | extra cflags |@.\
     |---|---|---|---|@.";
  List.iter
    (fun b ->
      Format.printf "| `%s` | %s | %s | %s |@." (Simd.Backend.name b)
        (Simd.Backend.describe b)
        (match Simd.Backend.native_vl b with
        | Some v -> string_of_int v
        | None -> "any power of two in [4, 64]")
        (match Simd.Backend.cflags b with
        | [] -> "—"
        | fs -> "`" ^ String.concat " " fs ^ "`"))
    Simd.Backend.all;
  List.iter
    (fun file ->
      match read_program file with
      | Error m -> failwith (file ^ ": " ^ m)
      | Ok program -> (
        let config =
          {
            Simd.Driver.default with
            Simd.Driver.machine = Simd.Machine.create ~vector_len:vl;
            policy;
          }
        in
        match Simd.Driver.simdize ~check:true config program with
        | Simd.Driver.Scalar r ->
          failwith
            (Format.asprintf "%s: left scalar: %a" file Simd.Driver.pp_reason r)
        | Simd.Driver.Simdized o ->
          Format.printf
            "@.One placement of `%s` (policy `%s`, V = %d), retargeted to \
             every vector length in the matrix:@.@."
            file (Simd.Policy.name policy) vl;
          Format.printf
            "| V' | statements | retarget statuses | check errors | body \
             cost at V' |@.\
             |---|---|---|---|---|@.";
          List.iter
            (fun v' ->
              match Simd.Retarget.retarget ~vector_len:v' o with
              | Error reason ->
                Format.printf "| %d | — | %a | — | — |@." v'
                  Simd.Driver.pp_reason reason
              | Ok t ->
                let statuses =
                  String.concat ", "
                    (List.map
                       (Format.asprintf "%a" Simd.Retarget.pp_status)
                       t.Simd.Retarget.statuses)
                in
                let errors = List.length (Simd.Retarget.error_violations t) in
                let body_cost =
                  match
                    Simd.Json.member "body_cost"
                      (Simd.Retarget.to_json t)
                  with
                  | Some (Simd.Json.Float c) -> Printf.sprintf "%.2f" c
                  | Some (Simd.Json.Int c) -> string_of_int c
                  | _ -> "—"
                in
                Format.printf "| %d | %d | %s | %d | %s |@." v'
                  (List.length t.Simd.Retarget.statuses)
                  statuses errors body_cost)
            Simd.Retarget.supported_vls))
    files

(* ------------------------------------------------------------------ *)
(* JSON (BENCH_backends.json)                                          *)
(* ------------------------------------------------------------------ *)

let json_doc ?cc ~measure ~trip ~policy ~vl files_and_rows =
  let probe =
    List.map
      (fun b ->
        let support =
          match cc with
          | None -> Simd.Backend.Unsupported "no C compiler found"
          | Some cc -> Simd.Backend.probe ~cc b
        in
        Simd.Backend.to_json b support)
      Simd.Backend.all
  in
  let program_doc (file, program, rows) =
    let row_doc (row : Simd.Matrix.row) =
      let base =
        match Simd.Matrix.row_to_json row with
        | Simd.Json.Obj fields -> fields
        | j -> [ ("row", j) ]
      in
      let perf =
        match row.Simd.Matrix.retarget with
        | Ok t when measure -> (
          match measure_retargeted ~trip program t with
          | Ok (), opd, speedup ->
            [
              ("verify", Simd.Json.String "agrees");
              ("opd", Simd.Json.Float opd);
              ("speedup", Simd.Json.Float speedup);
            ]
          | Error m, opd, speedup ->
            [
              ("verify", Simd.Json.String ("mismatch: " ^ m));
              ("opd", Simd.Json.Float opd);
              ("speedup", Simd.Json.Float speedup);
            ]
          | exception e ->
            [ ("verify", Simd.Json.String ("error: " ^ Printexc.to_string e)) ]
          )
        | _ -> []
      in
      Simd.Json.Obj (base @ perf)
    in
    Simd.Json.Obj
      [
        ("file", Simd.Json.String file);
        ("rows", Simd.Json.List (List.map row_doc rows));
      ]
  in
  Simd.Json.Obj
    [
      ("schema", Simd.Json.String "simd-backends/1");
      ( "cc",
        match cc with
        | Some c -> Simd.Json.String (Simd.Cc.id c)
        | None -> Simd.Json.Null );
      ("source_vl", Simd.Json.Int vl);
      ("policy", Simd.Json.String (Simd.Policy.name policy));
      ("probe", Simd.Json.List probe);
      ("programs", Simd.Json.List (List.map program_doc files_and_rows));
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run files policy vl trip probe_only doc_md no_measure json_path =
  let files = if files = [] then [ "corpus/fig1_paper.simd" ] else files in
  try
    if doc_md then begin
      print_doc_md files policy vl;
      0
    end
    else begin
      let cc = Simd.Cc.find () in
      if probe_only then begin
        print_probe ?cc ();
        0
      end
      else begin
        let measure = not no_measure in
        let compiled =
          List.filter_map
            (fun file ->
              match read_program file with
              | Error m -> failwith (file ^ ": " ^ m)
              | Ok program -> (
                let config =
                  {
                    Simd.Driver.default with
                    Simd.Driver.machine = Simd.Machine.create ~vector_len:vl;
                    policy;
                  }
                in
                match Simd.Driver.simdize ~check:true config program with
                | Simd.Driver.Scalar r ->
                  (* a legitimately-scalar program is skipped, not failed —
                     the matrix answers for placed compilations only *)
                  Format.eprintf "%s: left scalar (%a), skipped@." file
                    Simd.Driver.pp_reason r;
                  None
                | Simd.Driver.Simdized o ->
                  Some (file, program, Simd.Matrix.rows ?cc o)))
            files
        in
        print_probe ?cc ();
        List.iter
          (fun (file, program, rows) ->
            print_matrix ~measure ~trip file program rows)
          compiled;
        (match json_path with
        | None -> ()
        | Some path ->
          Simd.Json.to_file ~indent:2 path
            (json_doc ?cc ~measure ~trip ~policy ~vl compiled);
          Format.printf "@.wrote %s@." path);
        (* Exit nonzero if any retarget left error-severity violations or
           the simulator disagreed — the matrix is a correctness gate. *)
        let bad =
          List.exists
            (fun (_, program, rows) ->
              List.exists
                (fun (row : Simd.Matrix.row) ->
                  match row.Simd.Matrix.retarget with
                  | Error _ -> false (* legitimately not retargetable *)
                  | Ok t ->
                    Simd.Retarget.error_violations t <> []
                    ||
                    (measure
                    &&
                    match measure_retargeted ~trip program t with
                    | Ok (), _, _ -> false
                    | Error _, _, _ -> true
                    | exception _ -> true))
                rows)
            compiled
        in
        if bad then 1 else 0
      end
    end
  with Failure m ->
    Format.eprintf "backends: %s@." m;
    2

let cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Loop programs to retarget (default: corpus/fig1_paper.simd).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Simd.Policy.Dominant
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Shift-placement policy of the one source compilation.")
  in
  let vl =
    Arg.(
      value & opt int 16
      & info [ "V"; "vector-len" ] ~docv:"BYTES"
          ~doc:"Vector length of the source compilation.")
  in
  let trip =
    Arg.(
      value & opt int 200
      & info [ "trip" ] ~docv:"N"
          ~doc:"Trip count for runtime-bound loops when simulating.")
  in
  let probe_only =
    Arg.(
      value & flag
      & info [ "probe" ]
          ~doc:"Print the capability probe (what this machine's toolchain \
                and CPU can do with each backend) and exit.")
  in
  let doc_md =
    Arg.(
      value & flag
      & info [ "doc-md" ]
          ~doc:"Print the deterministic markdown matrix for \
                docs/BACKENDS.md (registry facts + retarget table; no \
                compiler probe, so the output is machine-independent).")
  in
  let no_measure =
    Arg.(
      value & flag
      & info [ "no-measure" ]
          ~doc:"Skip simulation (static retarget + check columns only).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the full matrix (schema simd-backends/1) as \
                JSON — the BENCH_backends.json artifact CI uploads.")
  in
  Cmd.v
    (Cmd.info "backends" ~version:"1.0"
       ~doc:
         "Probe the C backends and retarget one placed compilation across \
          the vector-length matrix")
    Term.(
      const run $ files $ policy $ vl $ trip $ probe_only $ doc_md
      $ no_measure $ json)

let () = exit (Cmd.eval' cmd)
