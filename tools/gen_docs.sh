#!/usr/bin/env bash
# Regenerate docs/POLICIES.md and the generated tail of docs/BACKENDS.md
# from the actual compiler output.
#
# POLICIES.md embeds real `simdize --trace` transcripts (placement
# provenance, per-pass IR diffs) and placed reorganization graphs;
# BACKENDS.md ends in the backend registry and vector-length retargeting
# tables printed by `backends.exe --doc-md`. Nothing below the marker
# lines is hand-written: run this script after any change to placement,
# code generation, the trace format, the backend registry, or the
# retargeting engine. CI runs it and fails on drift, so the
# documentation cannot rot silently.
#
# Output is deterministic: traces carry no timestamps, the compiler is a
# pure function of its input, and --doc-md prints registry facts and
# retarget results only (never machine-specific probe results).

set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/simdize.exe bin/backends.exe
SIMDIZE=_build/default/bin/simdize.exe
BACKENDS=_build/default/bin/backends.exe

out=docs/POLICIES.md
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# The worked example: the paper's Figure 1 loop with three mutually
# misaligned references — small enough to read, rich enough that every
# policy places differently. The solver section uses the six-stream loop
# where the exact placement beats all four heuristics.
EXAMPLE=corpus/fig1_paper.simd
SOLVER_EXAMPLE=corpus/opt-beats-heuristics.simd
JOINT_EXAMPLE=corpus/joint-beats-optimal.simd

section() { # section <policy> <charter...>
  local policy=$1; shift
  cat <<EOF

## \`$policy\`

$*

\`\`\`sh
dune exec bin/simdize.exe -- $EXAMPLE -p $policy --trace -e graph
\`\`\`

\`\`\`text
EOF
  "$SIMDIZE" "$EXAMPLE" -p "$policy" --trace -e graph
  cat <<'EOF'
```
EOF
}

{
  cat <<'EOF'
# Shift-placement policies, worked

<!-- GENERATED FILE — do not edit. Regenerate with tools/gen_docs.sh;
     CI fails if this page drifts from the compiler's actual output. -->

Each section below compiles the paper's Figure 1 loop
(`corpus/fig1_paper.simd`)

```c
EOF
  cat "$EXAMPLE"
  cat <<'EOF'
```

under one shift-placement policy and shows the real output of
`simdize --trace -e graph`: the placement event (which policy rule put
each `vshiftstream` at which offset, its direction, and its price under
the machine cost model), the per-pass IR diffs, and finally the placed
data reorganization graph. The element width is 4 bytes, so the streams
`a[i+3]`, `b[i+1]`, `c[i+2]` sit at byte offsets 12, 4, 8 — no peel
amount aligns more than one of them, which is exactly the situation the
paper's stream-shift machinery exists for. The transcript format is
documented in [TRACE.md](TRACE.md); the language in
[LANGUAGE.md](LANGUAGE.md).

The modeled costs quoted in the placement events use the default machine
(V = 16 bytes): a left `vshiftpair` costs 1.00, a right one 1.25
(right shifts force a prepended load in the prologue — see
`lib/opt/cost.ml`).
EOF

  section zero "The paper's baseline: shift every load stream to offset 0, \
compute there, and shift the result from 0 to the store alignment. Always \
applicable — the only policy whose shift directions are decidable at \
compile time under runtime alignments — but it maximizes the shift count."

  section eager "Shift each misaligned load stream directly to the store \
alignment as soon as it is loaded. Simple, and never worse than zero-shift \
for a single-use stream, but it shifts relatively aligned operands that \
lazy placement would combine first."

  section lazy "Delay shifts while operand streams are relatively aligned; \
when operands disagree, meet at one operand's offset. One shift fewer than \
eager whenever two loads share an alignment (Figure 6a)."

  section dominant "Lazy placement that meets at the statement's most \
frequent stream offset when that offset is a candidate — the best \
heuristic of the four on loops with a dominant alignment (Figure 6b)."

  section optimal "Provably minimum-cost placement: dynamic programming \
over the data reorganization graph with per-offset cost tables \
(\`Simd.Opt.Solve\`), minimizing the machine cost model exactly — \
including the left/right shift asymmetry the heuristics ignore."

  section auto "Per-statement argmin over every placeable policy \
(including the exact solver), falling back to zero-shift under runtime \
alignments — the policy the driver reports in \`used_policy\` when it \
differs from the requested one."

  section joint "Whole-body minimum-cost placement with cross-statement \
stream sharing (\`Simd.Opt.Joint\`): identical reorganization chains \
across statements become one \`vshiftstream\` after value numbering, so \
the solver prices the loop body jointly instead of statement by \
statement. Never worse than \`optimal\` on any body, and strictly better \
whenever a shared leaf placement amortizes across consumers."

  cat <<EOF

## Where the exact solver beats every heuristic

\`$SOLVER_EXAMPLE\` has six load streams at offsets 4, 8, 8, 12, 12, 12:
the dominant offset (12) is the wrong meeting point once the cost model's
left/right asymmetry is priced in. The per-statement report shows the
modeled cost under every policy:

\`\`\`sh
dune exec bin/simdize.exe -- $SOLVER_EXAMPLE -p optimal --stats
\`\`\`

\`\`\`text
EOF
  "$SIMDIZE" "$SOLVER_EXAMPLE" -p optimal --stats -e graph |
    sed -n '/"alternatives"/,/}/p'
  cat <<'EOF'
```

(the full report also lists the streams, chosen shifts, and operation
counts; `alternatives` is the same statement priced under every other
placeable policy — the exact solver's entry is the minimum).
EOF

  cat <<EOF

## Where joint placement beats the per-statement solver

\`$JOINT_EXAMPLE\` reads the same two misaligned streams in three
statements. Statement by statement, the exact solver prefers one root
shift over the \`vadd\` in the first statement — locally cheapest, but it
leaves nothing to share. Joint placement pushes the shifts down to the
\`b\` and \`c\` leaves, where the same chains also feed the other two
statements: after value numbering the whole body runs on two shared
\`vshiftstream\`s, one full shift below the per-statement optimum. The
report's \`shared_streams\` section lists each shared chain with its
consumer count and the modeled saving:

\`\`\`sh
dune exec bin/simdize.exe -- $JOINT_EXAMPLE -p joint --stats
\`\`\`

\`\`\`text
EOF
  "$SIMDIZE" "$JOINT_EXAMPLE" -p joint --stats -e graph |
    sed -n '/"shared_streams"/,/\]/p'
  "$SIMDIZE" "$JOINT_EXAMPLE" -p joint --stats -e graph |
    grep '"body_cost"'
  cat <<'EOF'
```

(`body_cost` is the whole-loop cost after the sharing discount; the
property suite pins `joint <= optimal <= every heuristic` over the whole
corpus and a fixed-seed generator sweep).
EOF
} >"$tmp"

mv "$tmp" "$out"
echo "wrote $out"

# --- docs/BACKENDS.md: regenerate everything below the matrix marker ----
out=docs/BACKENDS.md
marker='<!-- BEGIN GENERATED MATRIX'
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if ! grep -q "$marker" "$out"; then
  echo "error: $out has no '$marker' marker" >&2
  exit 1
fi

{
  sed -n "1,/$marker/p" "$out"
  echo
  # Registry facts plus the fig1 placement retargeted across the matrix —
  # the same worked example POLICIES.md is built on.
  "$BACKENDS" --doc-md corpus/fig1_paper.simd
} >"$tmp"

mv "$tmp" "$out"
echo "wrote $out"
